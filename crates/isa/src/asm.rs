//! Two-pass text assembler for RV32IM + Zicsr + the neuromorphic extension.
//!
//! Supported syntax (a practical subset of GNU as):
//!
//! * labels (`name:`), comments (`#`, `//`, `;`),
//! * directives: `.text [addr]`, `.data [addr]`, `.org addr`, `.word`,
//!   `.half`, `.byte`, `.space n`, `.align n` (power of two), `.equ name, expr`,
//!   `.global` (accepted, ignored),
//! * integer expressions with `+ - * << >> & |`, parentheses, decimal /
//!   `0x` / `0b` literals, `'c'` chars, symbols, and `%hi(expr)` / `%lo(expr)`,
//! * all RV32IM instructions, `csrrw/s/c[i]` (with named CSRs `mcycle`,
//!   `mcycleh`, `minstret`, `minstreth`, `mhartid`), the four neuromorphic
//!   instructions, and the usual pseudo-instructions (`li`, `la`, `mv`,
//!   `not`, `neg`, `j`, `jr`, `ret`, `call`, `nop`, `beqz`, `bnez`, ...).
//!
//! Pass 1 lays out sections and collects symbols; pass 2 encodes. By
//! default `li`/`la` with a symbolic or large operand always occupy two
//! words (lui+addi) so both passes agree on layout.
//!
//! [`Assembler::relax`] enables an optional relaxation + peephole stage
//! between the passes: `li`/`la` shrink to a single `addi` (12-bit
//! values) or a single `lui` (4 KiB-aligned values) even when symbolic,
//! redundant moves are deleted, an adjacent `sw`/`lw` pair through the
//! stack pointer collapses to a register move, and a branch over an
//! unconditional jump folds into one inverted branch. Sizes are settled
//! by a grow-only fixpoint (start minimal, re-lay-out, grow anything
//! that no longer encodes), so layout always converges. The pass only
//! changes *how many* instructions retire, never the architectural
//! result; it is off by default and opted into by the program engine.

use std::collections::HashMap;

use crate::encode::encode;
use crate::inst::{AluImmOp, AluOp, BranchOp, CsrOp, Inst, NmOp};
use crate::inst::{LoadOp, StoreOp};
use crate::reg::Reg;

/// Default base address of the `.text` section (off-chip SDRAM).
pub const DEFAULT_TEXT_BASE: u32 = 0x0000_0000;
/// Default base address of the `.data` section (off-chip SDRAM).
pub const DEFAULT_DATA_BASE: u32 = 0x0004_0000;

/// Assembly error with source line information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// A contiguous assembled memory region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Base address.
    pub base: u32,
    /// Raw little-endian bytes.
    pub data: Vec<u8>,
}

/// Assembled program: memory segments plus the symbol table.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// All emitted segments (one per `.text`/`.data`/`.org` region).
    pub segments: Vec<Segment>,
    /// Label and `.equ` values.
    pub symbols: HashMap<String, u32>,
    /// Entry point (base of the first `.text` region, or the `_start`
    /// symbol when defined).
    pub entry: u32,
}

impl Program {
    /// Words of the segment containing the entry point (the text image).
    pub fn words(&self) -> Vec<u32> {
        for seg in &self.segments {
            if self.entry >= seg.base && self.entry < seg.base + seg.data.len() as u32 {
                return seg
                    .data
                    .chunks(4)
                    .map(|c| {
                        let mut w = [0u8; 4];
                        w[..c.len()].copy_from_slice(c);
                        u32::from_le_bytes(w)
                    })
                    .collect();
            }
        }
        Vec::new()
    }

    /// Look up a symbol's address.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Total image size in bytes across all segments.
    pub fn size(&self) -> usize {
        self.segments.iter().map(|s| s.data.len()).sum()
    }
}

/// Named CSRs understood by the assembler.
fn csr_by_name(name: &str) -> Option<u16> {
    Some(match name {
        "mcycle" => 0xB00,
        "minstret" => 0xB02,
        "mcycleh" => 0xB80,
        "minstreth" => 0xB82,
        "mhartid" => 0xF14,
        _ => return None,
    })
}

/// The two-pass assembler.
#[derive(Debug, Clone)]
pub struct Assembler {
    text_base: u32,
    data_base: u32,
    relax: bool,
}

impl Default for Assembler {
    fn default() -> Self {
        Assembler {
            text_base: DEFAULT_TEXT_BASE,
            data_base: DEFAULT_DATA_BASE,
            relax: false,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// One parsed source statement. Layout (and the relaxation stage, which
/// re-lays-out repeatedly) replays these without re-parsing the text.
#[derive(Debug, Clone)]
enum Stmt {
    /// A label definition (bound to the cursor at its position).
    Label { line: usize, name: String },
    /// `.text [addr]` / `.data [addr]`.
    SetSection {
        line: usize,
        section: Section,
        expr: Option<String>,
    },
    /// `.org addr`.
    Org { line: usize, expr: String },
    /// `.align n` (power of two).
    Align { line: usize, expr: String },
    /// `.space n` / `.skip n`.
    Space { line: usize, expr: String },
    /// `.equ name, expr` / `.set name, expr`.
    Equ {
        line: usize,
        name: String,
        expr: String,
    },
    /// `.word`/`.half`/`.byte` (expressions evaluated at emit time).
    EmitData {
        line: usize,
        width: u32,
        exprs: Vec<String>,
    },
    /// One machine instruction (possibly a pseudo expansion slot).
    Inst {
        line: usize,
        mnemonic: String,
        operands: Vec<String>,
    },
}

/// The result of replaying the statement list at a given size vector:
/// the symbol table and, parallel to the statements, each statement's
/// address (and resolved byte count for `.space`).
struct Layout {
    symbols: HashMap<String, u32>,
    addrs: Vec<u32>,
    space: Vec<u32>,
}

/// Safety cap on relaxation rounds (each round is a full size fixpoint
/// followed by one peephole sweep; real programs settle in 2-3).
const MAX_RELAX_ROUNDS: usize = 16;

impl Assembler {
    /// Assembler with the default section bases.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the `.text` base address.
    pub fn text_base(mut self, base: u32) -> Self {
        self.text_base = base;
        self
    }

    /// Override the `.data` base address.
    pub fn data_base(mut self, base: u32) -> Self {
        self.data_base = base;
        self
    }

    /// Enable (or disable) the relaxation + peephole stage. Off by
    /// default: hand-written test programs often assert exact layouts
    /// or rely on filler instructions; the program engine opts in.
    pub fn relax(mut self, on: bool) -> Self {
        self.relax = on;
        self
    }

    /// Assemble a full source text into a [`Program`].
    pub fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        let mut stmts = self.parse(source)?;
        let (mut sizes, mut lay) = self.fix_sizes(&stmts)?;
        if self.relax {
            for _ in 0..MAX_RELAX_ROUNDS {
                if !apply_peepholes(&mut stmts, &sizes, &lay) {
                    break;
                }
                let fixed = self.fix_sizes(&stmts)?;
                sizes = fixed.0;
                lay = fixed.1;
            }
        }
        self.emit(&stmts, &sizes, &lay)
    }

    /// Scan the source into a statement list (no layout yet).
    fn parse(&self, source: &str) -> Result<Vec<Stmt>, AsmError> {
        let mut stmts = Vec::new();
        for (lineno, raw_line) in source.lines().enumerate() {
            let line = lineno + 1;
            let mut text = strip_comment(raw_line).trim().to_string();
            if text.is_empty() {
                continue;
            }
            // Possibly several labels on one line.
            while let Some(colon) = find_label_colon(&text) {
                let label = text[..colon].trim().to_string();
                if !is_ident(&label) {
                    return Err(AsmError {
                        line,
                        message: format!("bad label `{label}`"),
                    });
                }
                stmts.push(Stmt::Label { line, name: label });
                text = text[colon + 1..].trim().to_string();
            }
            if text.is_empty() {
                continue;
            }

            let (mnemonic, rest) = split_mnemonic(&text);
            let mnemonic = mnemonic.to_ascii_lowercase();

            if let Some(directive) = mnemonic.strip_prefix('.') {
                match directive {
                    "text" | "data" => {
                        let section = if directive == "text" {
                            Section::Text
                        } else {
                            Section::Data
                        };
                        let expr = (!rest.trim().is_empty()).then(|| rest.trim().to_string());
                        stmts.push(Stmt::SetSection {
                            line,
                            section,
                            expr,
                        });
                    }
                    "org" => stmts.push(Stmt::Org {
                        line,
                        expr: rest.to_string(),
                    }),
                    "align" => stmts.push(Stmt::Align {
                        line,
                        expr: rest.to_string(),
                    }),
                    "space" | "skip" => stmts.push(Stmt::Space {
                        line,
                        expr: rest.to_string(),
                    }),
                    "equ" | "set" => {
                        let (name, expr) = rest.split_once(',').ok_or_else(|| AsmError {
                            line,
                            message: ".equ needs name, value".into(),
                        })?;
                        stmts.push(Stmt::Equ {
                            line,
                            name: name.trim().to_string(),
                            expr: expr.to_string(),
                        });
                    }
                    "word" | "half" | "byte" => {
                        let width = match directive {
                            "word" => 4,
                            "half" => 2,
                            _ => 1,
                        };
                        let exprs: Vec<String> = split_operands(rest)
                            .into_iter()
                            .map(|s| s.to_string())
                            .collect();
                        stmts.push(Stmt::EmitData { line, width, exprs });
                    }
                    "global" | "globl" | "section" => { /* accepted, ignored */ }
                    _ => {
                        return Err(AsmError {
                            line,
                            message: format!("unknown directive `.{directive}`"),
                        })
                    }
                }
                continue;
            }

            let operands: Vec<String> = split_operands(rest)
                .into_iter()
                .map(|s| s.to_string())
                .collect();
            stmts.push(Stmt::Inst {
                line,
                mnemonic,
                operands,
            });
        }
        Ok(stmts)
    }

    /// Replay the statement list with the given per-statement instruction
    /// sizes: advance the section cursors, bind labels, evaluate `.equ`s
    /// and directive expressions (with the symbols defined so far, as a
    /// single-pass assembler would).
    fn layout(&self, stmts: &[Stmt], sizes: &[u32]) -> Result<Layout, AsmError> {
        let mut symbols: HashMap<String, u32> = HashMap::new();
        let mut addrs = vec![0u32; stmts.len()];
        let mut space = vec![0u32; stmts.len()];
        let mut text_cursor = self.text_base;
        let mut data_cursor = self.data_base;
        let mut section = Section::Text;

        for (idx, stmt) in stmts.iter().enumerate() {
            addrs[idx] = cursor(section, text_cursor, data_cursor);
            match stmt {
                Stmt::Label { line, name } => {
                    if symbols.insert(name.clone(), addrs[idx]).is_some() {
                        return Err(AsmError {
                            line: *line,
                            message: format!("duplicate label `{name}`"),
                        });
                    }
                }
                Stmt::SetSection {
                    line,
                    section: sect,
                    expr,
                } => {
                    if let Some(e) = expr {
                        let v = eval_const(e, *line, &symbols)? as u32;
                        *cursor_mut(*sect, &mut text_cursor, &mut data_cursor) = v;
                    }
                    section = *sect;
                }
                Stmt::Org { line, expr } => {
                    let cur = cursor_mut(section, &mut text_cursor, &mut data_cursor);
                    *cur = eval_const(expr, *line, &symbols)? as u32;
                }
                Stmt::Align { line, expr } => {
                    let n = eval_const(expr, *line, &symbols)? as u32;
                    let a = 1u32 << n;
                    let cur = cursor_mut(section, &mut text_cursor, &mut data_cursor);
                    *cur = (*cur + a - 1) & !(a - 1);
                }
                Stmt::Space { line, expr } => {
                    let n = eval_const(expr, *line, &symbols)? as u32;
                    space[idx] = n;
                    *cursor_mut(section, &mut text_cursor, &mut data_cursor) += n;
                }
                Stmt::Equ { line, name, expr } => {
                    let v = eval_const(expr, *line, &symbols)? as u32;
                    symbols.insert(name.clone(), v);
                }
                Stmt::EmitData { width, exprs, .. } => {
                    let n = exprs.len() as u32 * width;
                    *cursor_mut(section, &mut text_cursor, &mut data_cursor) += n;
                }
                Stmt::Inst { .. } => {
                    *cursor_mut(section, &mut text_cursor, &mut data_cursor) += 4 * sizes[idx];
                }
            }
        }
        Ok(Layout {
            symbols,
            addrs,
            space,
        })
    }

    /// Settle the per-instruction size vector. Without relaxation this
    /// is the conservative single shot (`pseudo_size`). With relaxation
    /// every `li`/`la` starts at one word and a grow-only fixpoint
    /// widens any that no longer encode at the resulting addresses —
    /// monotone growth, so it always terminates (and never oscillates
    /// the way shrink-iteration can, e.g. a `lui`-only `li 0x1000`
    /// pulling a label back below the 4 KiB boundary).
    fn fix_sizes(&self, stmts: &[Stmt]) -> Result<(Vec<u32>, Layout), AsmError> {
        let mut sizes: Vec<u32> = stmts
            .iter()
            .map(|s| match s {
                Stmt::Inst {
                    mnemonic, operands, ..
                } => {
                    if self.relax && matches!(mnemonic.as_str(), "li" | "la") {
                        1
                    } else {
                        pseudo_size(mnemonic, operands, &HashMap::new())
                    }
                }
                _ => 0,
            })
            .collect();
        loop {
            let lay = self.layout(stmts, &sizes)?;
            if !self.relax {
                return Ok((sizes, lay));
            }
            let mut grew = false;
            for (idx, stmt) in stmts.iter().enumerate() {
                let Stmt::Inst {
                    line,
                    mnemonic,
                    operands,
                } = stmt
                else {
                    continue;
                };
                if !matches!(mnemonic.as_str(), "li" | "la") {
                    continue;
                }
                // An unresolvable operand sizes conservatively; pass 2
                // reports the error with the proper source line.
                let needed = match operands.get(1) {
                    Some(e) => match eval_const(e, *line, &lay.symbols) {
                        Ok(v) => li_words(v as i32),
                        Err(_) => 2,
                    },
                    None => 1,
                };
                if needed > sizes[idx] {
                    sizes[idx] = needed;
                    grew = true;
                }
            }
            if !grew {
                return Ok((sizes, lay));
            }
        }
    }

    /// Pass 2: encode every statement at its settled address and merge
    /// the pieces into contiguous segments.
    fn emit(&self, stmts: &[Stmt], sizes: &[u32], lay: &Layout) -> Result<Program, AsmError> {
        let symbols = &lay.symbols;
        let mut image: Vec<(u32, Vec<u8>)> = Vec::new();
        for (idx, stmt) in stmts.iter().enumerate() {
            match stmt {
                Stmt::Space { .. } => {
                    image.push((lay.addrs[idx], vec![0; lay.space[idx] as usize]));
                }
                Stmt::EmitData { line, width, exprs } => {
                    let mut bytes = Vec::with_capacity(exprs.len() * *width as usize);
                    for e in exprs {
                        let v = eval_const(e, *line, symbols)? as u32;
                        bytes.extend_from_slice(&v.to_le_bytes()[..*width as usize]);
                    }
                    image.push((lay.addrs[idx], bytes));
                }
                Stmt::Inst {
                    line,
                    mnemonic,
                    operands,
                } => {
                    let insts = encode_mnemonic(
                        mnemonic,
                        operands,
                        lay.addrs[idx],
                        *line,
                        symbols,
                        sizes[idx],
                    )?;
                    debug_assert_eq!(insts.len() as u32, sizes[idx], "layout/encode size drift");
                    let mut bytes = Vec::with_capacity(insts.len() * 4);
                    for i in insts {
                        bytes.extend_from_slice(&encode(i).to_le_bytes());
                    }
                    image.push((lay.addrs[idx], bytes));
                }
                _ => {}
            }
        }

        // Merge adjacent/overlapping pieces into segments.
        image.sort_by_key(|(a, _)| *a);
        let mut segments: Vec<Segment> = Vec::new();
        for (addr, bytes) in image {
            if bytes.is_empty() {
                continue;
            }
            match segments.last_mut() {
                Some(seg) if seg.base + seg.data.len() as u32 == addr => {
                    seg.data.extend_from_slice(&bytes);
                }
                _ => segments.push(Segment {
                    base: addr,
                    data: bytes,
                }),
            }
        }

        let entry = lay.symbols.get("_start").copied().unwrap_or(self.text_base);
        Ok(Program {
            segments,
            symbols: lay.symbols.clone(),
            entry,
        })
    }
}

// ---------------------------------------------------------------------------
// The peephole catalogue (relaxation stage only)
// ---------------------------------------------------------------------------

/// One peephole sweep over the statement list. Returns whether anything
/// changed (the caller then re-runs the size fixpoint and sweeps again).
fn apply_peepholes(stmts: &mut Vec<Stmt>, sizes: &[u32], lay: &Layout) -> bool {
    let mut remove = vec![false; stmts.len()];
    let mut replace: Vec<(usize, Stmt)> = Vec::new();
    let mut changed = false;

    let mut i = 0;
    while i < stmts.len() {
        let Stmt::Inst {
            line,
            mnemonic,
            operands,
        } = &stmts[i]
        else {
            i += 1;
            continue;
        };

        // --- redundant move / no-op elimination ---
        if is_redundant_move(mnemonic, operands) {
            remove[i] = true;
            changed = true;
            i += 1;
            continue;
        }

        // The remaining patterns pair this instruction with the next one
        // in the same straight-line run (no section/layout break between
        // them; labels are tracked because a jump target between the two
        // would observe the rewrite).
        let Some((j, labeled)) = next_code_stmt(stmts, i) else {
            i += 1;
            continue;
        };
        if remove[j] || lay.addrs[j] != lay.addrs[i].wrapping_add(4 * sizes[i]) {
            i += 1;
            continue;
        }
        let Stmt::Inst {
            mnemonic: next_mn,
            operands: next_ops,
            ..
        } = &stmts[j]
        else {
            i += 1;
            continue;
        };

        // --- branch-over-jump collapse ---
        // `bcc a, b, L1; j L2; L1:` => `!bcc a, b, L2`. Only when the
        // branch skips exactly the jump, the jump target is symbolic
        // (literal targets are pc-relative and would shift), and nothing
        // can land on the jump itself.
        if let Some(inverted) = invert_branch(mnemonic) {
            if !labeled {
                if let Some(jump_target) = jump_target_expr(next_mn, next_ops) {
                    let target_expr = operands.last().cloned().unwrap_or_default();
                    let target = eval_const(&target_expr, *line, &lay.symbols).ok().map(|v| {
                        if is_pure_literal(&target_expr) {
                            (lay.addrs[i] as i64).wrapping_add(v)
                        } else {
                            v
                        }
                    });
                    let jump_addr = lay.addrs[j];
                    if target == Some(jump_addr as i64 + 4)
                        && !is_pure_literal(jump_target)
                        && !lay.symbols.values().any(|&v| v == jump_addr)
                    {
                        let mut new_ops = operands.clone();
                        *new_ops.last_mut().unwrap() = jump_target.clone();
                        replace.push((
                            i,
                            Stmt::Inst {
                                line: *line,
                                mnemonic: inverted.to_string(),
                                operands: new_ops,
                            },
                        ));
                        remove[j] = true;
                        changed = true;
                        i = j + 1;
                        continue;
                    }
                }
            }
        }

        // --- load-after-store elimination ---
        // `sw rs, off(sp); lw rd, off(sp)` => `mv rd, rs` (or nothing
        // when rd == rs). Restricted to literal offsets through the
        // stack pointer: stacks live in plain scratchpad RAM, while
        // arbitrary bases may address MMIO where a store-then-load pair
        // is a device handshake (the engine's barrier does exactly
        // that), and symbolic offsets could re-resolve after layout.
        if mnemonic == "sw" && next_mn == "lw" && !labeled {
            let empty = HashMap::new();
            let src = operands.first().and_then(|r| Reg::parse(r));
            let dst = next_ops.first().and_then(|r| Reg::parse(r));
            let st = operands.get(1).and_then(|m| parse_mem(m, 0, &empty).ok());
            let ld = next_ops.get(1).and_then(|m| parse_mem(m, 0, &empty).ok());
            if let (Some(src), Some(dst), Some(st), Some(ld)) = (src, dst, st, ld) {
                if st == ld && st.0 == Reg(2) {
                    if dst == src || dst == Reg(0) {
                        remove[j] = true;
                    } else {
                        replace.push((
                            j,
                            Stmt::Inst {
                                line: *line,
                                mnemonic: "mv".to_string(),
                                operands: vec![next_ops[0].clone(), operands[0].clone()],
                            },
                        ));
                    }
                    changed = true;
                    i = j + 1;
                    continue;
                }
            }
        }

        i += 1;
    }

    if changed {
        for (idx, stmt) in replace {
            stmts[idx] = stmt;
        }
        let mut keep = remove.iter().map(|r| !r);
        stmts.retain(|_| keep.next().unwrap());
    }
    changed
}

/// The next statement in the same straight-line code run: skips `.equ`s
/// (no layout effect), notes labels, and gives up at anything that
/// moves the cursor non-linearly. Returns (index, saw_label).
fn next_code_stmt(stmts: &[Stmt], i: usize) -> Option<(usize, bool)> {
    let mut labeled = false;
    for (k, stmt) in stmts.iter().enumerate().skip(i + 1) {
        match stmt {
            Stmt::Inst { .. } => return Some((k, labeled)),
            Stmt::Label { .. } => labeled = true,
            Stmt::Equ { .. } => {}
            _ => return None,
        }
    }
    None
}

/// A move (or arithmetic identity) that leaves all architectural state
/// unchanged. Writes to `x0` are kept: `nop` is often a deliberate
/// pipeline filler in timing-sensitive test programs.
fn is_redundant_move(mnemonic: &str, ops: &[String]) -> bool {
    let r = |i: usize| ops.get(i).and_then(|t| Reg::parse(t));
    let (rd, rs1, rs2) = (r(0), r(1), r(2));
    if rd == Some(Reg(0)) || rd.is_none() {
        return false;
    }
    let lit_zero = |i: usize| {
        ops.get(i)
            .map(|e| eval_const(e, 0, &HashMap::new()) == Ok(0))
            .unwrap_or(false)
    };
    match mnemonic {
        "mv" => ops.len() == 2 && rd == rs1,
        "addi" => ops.len() == 3 && rd == rs1 && lit_zero(2),
        "add" | "or" | "xor" => {
            ops.len() == 3
                && ((rd == rs1 && rs2 == Some(Reg(0)))
                    || (rd == rs2 && rs1 == Some(Reg(0)) && mnemonic != "xor"))
        }
        "sub" | "srli" | "slli" | "srai" => {
            ops.len() == 3
                && rd == rs1
                && (if mnemonic == "sub" {
                    rs2 == Some(Reg(0))
                } else {
                    lit_zero(2)
                })
        }
        _ => false,
    }
}

/// The inverted mnemonic of a conditional branch (operand order kept).
fn invert_branch(mnemonic: &str) -> Option<&'static str> {
    Some(match mnemonic {
        "beq" => "bne",
        "bne" => "beq",
        "blt" => "bge",
        "bge" => "blt",
        "bltu" => "bgeu",
        "bgeu" => "bltu",
        "bgt" => "ble",
        "ble" => "bgt",
        "bgtu" => "bleu",
        "bleu" => "bgtu",
        "beqz" => "bnez",
        "bnez" => "beqz",
        "bltz" => "bgez",
        "bgez" => "bltz",
        "bgtz" => "blez",
        "blez" => "bgtz",
        _ => return None,
    })
}

/// The target expression of an unconditional direct jump that links
/// nothing (`j`/`tail`, or `jal` with rd = x0).
fn jump_target_expr<'a>(mnemonic: &str, ops: &'a [String]) -> Option<&'a String> {
    match mnemonic {
        "j" | "tail" if ops.len() == 1 => ops.first(),
        "jal" if ops.len() == 2 && Reg::parse(&ops[0]) == Some(Reg(0)) => ops.get(1),
        _ => None,
    }
}

/// Minimal number of words a relaxed `li`/`la` of value `v` needs: one
/// `addi` for 12-bit values, one `lui` for 4 KiB-aligned values,
/// `lui`+`addi` otherwise.
fn li_words(v: i32) -> u32 {
    if (-2048..=2047).contains(&v) || v & 0xFFF == 0 {
        1
    } else {
        2
    }
}

fn cursor(section: Section, text: u32, data: u32) -> u32 {
    match section {
        Section::Text => text,
        Section::Data => data,
    }
}

fn cursor_mut<'a>(section: Section, text: &'a mut u32, data: &'a mut u32) -> &'a mut u32 {
    match section {
        Section::Text => text,
        Section::Data => data,
    }
}

fn strip_comment(line: &str) -> &str {
    let mut end = line.len();
    let bytes = line.as_bytes();
    let mut in_char = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if c == b'\'' {
            in_char = !in_char;
        }
        if !in_char {
            if c == b'#' || c == b';' {
                end = i;
                break;
            }
            if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
                end = i;
                break;
            }
        }
        i += 1;
    }
    &line[..end]
}

fn find_label_colon(text: &str) -> Option<usize> {
    // A label is an identifier followed by ':' before any whitespace-separated
    // mnemonic. Avoid treating `%hi(x):` style (not valid anyway) specially.
    let colon = text.find(':')?;
    let head = &text[..colon];
    is_ident(head.trim()).then_some(colon)
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
}

fn split_mnemonic(text: &str) -> (&str, &str) {
    match text.find(char::is_whitespace) {
        Some(i) => (&text[..i], &text[i + 1..]),
        None => (text, ""),
    }
}

/// Split an operand list on top-level commas (respecting parentheses).
fn split_operands(rest: &str) -> Vec<&str> {
    let rest = rest.trim();
    if rest.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut start = 0;
    for (i, c) in rest.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            ',' if depth == 0 => {
                out.push(rest[start..i].trim());
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(rest[start..].trim());
    out
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

struct ExprParser<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    symbols: &'a HashMap<String, u32>,
}

impl<'a> ExprParser<'a> {
    fn err(&self, message: impl Into<String>) -> AsmError {
        AsmError {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat2(&mut self, a: u8, b: u8) -> bool {
        self.skip_ws();
        if self.src.get(self.pos) == Some(&a) && self.src.get(self.pos + 1) == Some(&b) {
            self.pos += 2;
            true
        } else {
            false
        }
    }

    fn parse(&mut self) -> Result<i64, AsmError> {
        let v = self.or_expr()?;
        self.skip_ws();
        if self.pos != self.src.len() {
            return Err(self.err(format!(
                "trailing characters in expression: `{}`",
                String::from_utf8_lossy(&self.src[self.pos..])
            )));
        }
        Ok(v)
    }

    fn or_expr(&mut self) -> Result<i64, AsmError> {
        let mut v = self.and_expr()?;
        loop {
            if self.peek() == Some(b'|') {
                self.pos += 1;
                v |= self.and_expr()?;
            } else {
                return Ok(v);
            }
        }
    }

    fn and_expr(&mut self) -> Result<i64, AsmError> {
        let mut v = self.shift_expr()?;
        loop {
            if self.peek() == Some(b'&') {
                self.pos += 1;
                v &= self.shift_expr()?;
            } else {
                return Ok(v);
            }
        }
    }

    fn shift_expr(&mut self) -> Result<i64, AsmError> {
        let mut v = self.add_expr()?;
        loop {
            if self.eat2(b'<', b'<') {
                v <<= self.add_expr()?;
            } else if self.eat2(b'>', b'>') {
                v >>= self.add_expr()?;
            } else {
                return Ok(v);
            }
        }
    }

    fn add_expr(&mut self) -> Result<i64, AsmError> {
        let mut v = self.mul_expr()?;
        loop {
            if self.eat(b'+') {
                v = v.wrapping_add(self.mul_expr()?);
            } else if self.eat(b'-') {
                v = v.wrapping_sub(self.mul_expr()?);
            } else {
                return Ok(v);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<i64, AsmError> {
        let mut v = self.unary()?;
        loop {
            if self.eat(b'*') {
                v = v.wrapping_mul(self.unary()?);
            } else {
                return Ok(v);
            }
        }
    }

    fn unary(&mut self) -> Result<i64, AsmError> {
        if self.eat(b'-') {
            return Ok(self.unary()?.wrapping_neg());
        }
        if self.eat(b'+') {
            return self.unary();
        }
        if self.eat(b'~') {
            return Ok(!self.unary()?);
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<i64, AsmError> {
        self.skip_ws();
        let Some(&c) = self.src.get(self.pos) else {
            return Err(self.err("unexpected end of expression"));
        };
        if c == b'(' {
            self.pos += 1;
            let v = self.or_expr()?;
            if !self.eat(b')') {
                return Err(self.err("missing `)`"));
            }
            return Ok(v);
        }
        if c == b'%' {
            // %hi(expr) / %lo(expr)
            self.pos += 1;
            let start = self.pos;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_alphabetic() {
                self.pos += 1;
            }
            let func = String::from_utf8_lossy(&self.src[start..self.pos]).to_string();
            if !self.eat(b'(') {
                return Err(self.err("expected `(` after %hi/%lo"));
            }
            let v = self.or_expr()? as u32;
            if !self.eat(b')') {
                return Err(self.err("missing `)`"));
            }
            return match func.as_str() {
                // %hi compensates for the sign extension of the low part.
                "hi" => Ok(((v.wrapping_add(0x800)) >> 12) as i64),
                "lo" => Ok(((((v & 0xFFF) as i32) << 20) >> 20) as i64),
                _ => Err(self.err(format!("unknown function %{func}"))),
            };
        }
        if c == b'\'' {
            // character literal
            let bytes = &self.src[self.pos..];
            if bytes.len() >= 3 && bytes[2] == b'\'' {
                self.pos += 3;
                return Ok(bytes[1] as i64);
            }
            return Err(self.err("bad character literal"));
        }
        if c.is_ascii_digit() {
            let start = self.pos;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            let text: String = String::from_utf8_lossy(&self.src[start..self.pos]).replace('_', "");
            let v = if let Some(hex) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
                i64::from_str_radix(hex, 16)
            } else if let Some(bin) = text.strip_prefix("0b").or(text.strip_prefix("0B")) {
                i64::from_str_radix(bin, 2)
            } else {
                text.parse::<i64>()
            };
            return v.map_err(|_| self.err(format!("bad number `{text}`")));
        }
        if c.is_ascii_alphabetic() || c == b'_' || c == b'.' {
            let start = self.pos;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric()
                    || self.src[self.pos] == b'_'
                    || self.src[self.pos] == b'.')
            {
                self.pos += 1;
            }
            let name = String::from_utf8_lossy(&self.src[start..self.pos]).to_string();
            return self
                .symbols
                .get(&name)
                .map(|&v| v as i64)
                .ok_or_else(|| self.err(format!("undefined symbol `{name}`")));
        }
        Err(self.err(format!("unexpected character `{}`", c as char)))
    }
}

fn eval_const(expr: &str, line: usize, symbols: &HashMap<String, u32>) -> Result<i64, AsmError> {
    ExprParser {
        src: expr.trim().as_bytes(),
        pos: 0,
        line,
        symbols,
    }
    .parse()
}

/// Can this expression be evaluated without the symbol table? Used in pass 1
/// to size `li`.
fn is_pure_literal(expr: &str) -> bool {
    eval_const(expr, 0, &HashMap::new()).is_ok()
}

// ---------------------------------------------------------------------------
// Instruction encoding
// ---------------------------------------------------------------------------

/// Number of 32-bit words a mnemonic occupies (pseudo expansion size).
fn pseudo_size(mnemonic: &str, operands: &[String], _symbols: &HashMap<String, u32>) -> u32 {
    match mnemonic {
        "li" => {
            if let Some(expr) = operands.get(1) {
                if is_pure_literal(expr) {
                    // Same truncation as pass 2: `li` loads the low 32 bits
                    // (so 0xffffffff is -1 and fits one `addi`).
                    let v = eval_const(expr, 0, &HashMap::new()).unwrap_or(0) as i32;
                    if (-2048..=2047).contains(&(v as i64)) {
                        return 1;
                    }
                }
            }
            2
        }
        "la" => 2,
        _ => 1,
    }
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    Reg::parse(tok).ok_or_else(|| AsmError {
        line,
        message: format!("bad register `{tok}`"),
    })
}

/// Parse `imm(reg)` or `(reg)` or `imm` (defaulting the base to x0).
fn parse_mem(
    tok: &str,
    line: usize,
    symbols: &HashMap<String, u32>,
) -> Result<(Reg, i32), AsmError> {
    let tok = tok.trim();
    if let Some(open) = tok.rfind('(') {
        let close = tok.rfind(')').ok_or_else(|| AsmError {
            line,
            message: format!("missing `)` in `{tok}`"),
        })?;
        let base = parse_reg(&tok[open + 1..close], line)?;
        let imm_src = tok[..open].trim();
        let imm = if imm_src.is_empty() {
            0
        } else {
            eval_const(imm_src, line, symbols)? as i32
        };
        Ok((base, imm))
    } else {
        Ok((Reg::ZERO, eval_const(tok, line, symbols)? as i32))
    }
}

fn expect_ops(n: usize, operands: &[String], mnemonic: &str, line: usize) -> Result<(), AsmError> {
    if operands.len() != n {
        return Err(AsmError {
            line,
            message: format!("`{mnemonic}` expects {n} operands, got {}", operands.len()),
        });
    }
    Ok(())
}

fn check_i_imm(imm: i64, line: usize, mnemonic: &str) -> Result<i32, AsmError> {
    if !(-2048..=2047).contains(&imm) {
        return Err(AsmError {
            line,
            message: format!("immediate {imm} out of 12-bit range for `{mnemonic}`"),
        });
    }
    Ok(imm as i32)
}

fn branch_target(
    expr: &str,
    pc: u32,
    line: usize,
    symbols: &HashMap<String, u32>,
) -> Result<i32, AsmError> {
    let v = eval_const(expr, line, symbols)?;
    // A known symbol (or large value) is absolute; small literals are
    // already pc-relative offsets.
    let off = if is_pure_literal(expr) {
        v
    } else {
        v - pc as i64
    };
    if off % 2 != 0 {
        return Err(AsmError {
            line,
            message: format!("misaligned branch target {off}"),
        });
    }
    Ok(off as i32)
}

#[allow(clippy::too_many_lines)]
fn encode_mnemonic(
    mnemonic: &str,
    ops: &[String],
    pc: u32,
    line: usize,
    symbols: &HashMap<String, u32>,
    words: u32,
) -> Result<Vec<Inst>, AsmError> {
    let ev = |e: &str| eval_const(e, line, symbols);
    let reg = |t: &str| parse_reg(t, line);

    let alu_imm = |op: AluImmOp| -> Result<Vec<Inst>, AsmError> {
        expect_ops(3, ops, mnemonic, line)?;
        let imm = match op {
            AluImmOp::Slli | AluImmOp::Srli | AluImmOp::Srai => {
                let v = ev(&ops[2])?;
                if !(0..32).contains(&v) {
                    return Err(AsmError {
                        line,
                        message: format!("shift amount {v} out of range"),
                    });
                }
                v as i32
            }
            _ => check_i_imm(ev(&ops[2])?, line, mnemonic)?,
        };
        Ok(vec![Inst::OpImm {
            op,
            rd: reg(&ops[0])?,
            rs1: reg(&ops[1])?,
            imm,
        }])
    };
    let alu = |op: AluOp| -> Result<Vec<Inst>, AsmError> {
        expect_ops(3, ops, mnemonic, line)?;
        Ok(vec![Inst::Op {
            op,
            rd: reg(&ops[0])?,
            rs1: reg(&ops[1])?,
            rs2: reg(&ops[2])?,
        }])
    };
    let load = |op: LoadOp| -> Result<Vec<Inst>, AsmError> {
        expect_ops(2, ops, mnemonic, line)?;
        let (rs1, imm) = parse_mem(&ops[1], line, symbols)?;
        Ok(vec![Inst::Load {
            op,
            rd: reg(&ops[0])?,
            rs1,
            imm,
        }])
    };
    let store = |op: StoreOp| -> Result<Vec<Inst>, AsmError> {
        expect_ops(2, ops, mnemonic, line)?;
        let (rs1, imm) = parse_mem(&ops[1], line, symbols)?;
        Ok(vec![Inst::Store {
            op,
            rs1,
            rs2: reg(&ops[0])?,
            imm,
        }])
    };
    let branch = |op: BranchOp, swap: bool| -> Result<Vec<Inst>, AsmError> {
        expect_ops(3, ops, mnemonic, line)?;
        let (a, b) = if swap { (1, 0) } else { (0, 1) };
        let imm = branch_target(&ops[2], pc, line, symbols)?;
        Ok(vec![Inst::Branch {
            op,
            rs1: reg(&ops[a])?,
            rs2: reg(&ops[b])?,
            imm,
        }])
    };
    let branch_zero = |op: BranchOp, zero_first: bool| -> Result<Vec<Inst>, AsmError> {
        expect_ops(2, ops, mnemonic, line)?;
        let imm = branch_target(&ops[1], pc, line, symbols)?;
        let r = reg(&ops[0])?;
        let (rs1, rs2) = if zero_first {
            (Reg::ZERO, r)
        } else {
            (r, Reg::ZERO)
        };
        Ok(vec![Inst::Branch { op, rs1, rs2, imm }])
    };
    let csr_op = |op: CsrOp, imm_form: bool| -> Result<Vec<Inst>, AsmError> {
        expect_ops(3, ops, mnemonic, line)?;
        let rd = reg(&ops[0])?;
        let csr = match csr_by_name(ops[1].as_str()) {
            Some(c) => c,
            None => ev(&ops[1])? as u16,
        };
        if imm_form {
            let uimm = ev(&ops[2])? as u8;
            Ok(vec![Inst::CsrImm { op, rd, uimm, csr }])
        } else {
            Ok(vec![Inst::Csr {
                op,
                rd,
                rs1: reg(&ops[2])?,
                csr,
            }])
        }
    };
    let nm = |op: NmOp| -> Result<Vec<Inst>, AsmError> {
        expect_ops(3, ops, mnemonic, line)?;
        Ok(vec![Inst::Nm {
            op,
            rd: reg(&ops[0])?,
            rs1: reg(&ops[1])?,
            rs2: reg(&ops[2])?,
        }])
    };

    match mnemonic {
        // --- RV32I ---
        "lui" => {
            expect_ops(2, ops, mnemonic, line)?;
            let v = ev(&ops[1])?;
            // Accept either a 20-bit page number or a full 32-bit value.
            let imm = if (0..0x100000).contains(&v) {
                (v as i32) << 12
            } else {
                v as i32
            };
            Ok(vec![Inst::Lui {
                rd: reg(&ops[0])?,
                imm,
            }])
        }
        "auipc" => {
            expect_ops(2, ops, mnemonic, line)?;
            let v = ev(&ops[1])?;
            let imm = if (0..0x100000).contains(&v) {
                (v as i32) << 12
            } else {
                v as i32
            };
            Ok(vec![Inst::Auipc {
                rd: reg(&ops[0])?,
                imm,
            }])
        }
        "jal" => match ops.len() {
            1 => {
                let imm = branch_target(&ops[0], pc, line, symbols)?;
                Ok(vec![Inst::Jal { rd: Reg::RA, imm }])
            }
            2 => {
                let imm = branch_target(&ops[1], pc, line, symbols)?;
                Ok(vec![Inst::Jal {
                    rd: reg(&ops[0])?,
                    imm,
                }])
            }
            n => Err(AsmError {
                line,
                message: format!("`jal` expects 1 or 2 operands, got {n}"),
            }),
        },
        "jalr" => match ops.len() {
            1 => Ok(vec![Inst::Jalr {
                rd: Reg::RA,
                rs1: reg(&ops[0])?,
                imm: 0,
            }]),
            2 => {
                let (rs1, imm) = parse_mem(&ops[1], line, symbols)?;
                Ok(vec![Inst::Jalr {
                    rd: reg(&ops[0])?,
                    rs1,
                    imm,
                }])
            }
            3 => Ok(vec![Inst::Jalr {
                rd: reg(&ops[0])?,
                rs1: reg(&ops[1])?,
                imm: check_i_imm(ev(&ops[2])?, line, mnemonic)?,
            }]),
            n => Err(AsmError {
                line,
                message: format!("`jalr` expects 1-3 operands, got {n}"),
            }),
        },
        "beq" => branch(BranchOp::Eq, false),
        "bne" => branch(BranchOp::Ne, false),
        "blt" => branch(BranchOp::Lt, false),
        "bge" => branch(BranchOp::Ge, false),
        "bltu" => branch(BranchOp::Ltu, false),
        "bgeu" => branch(BranchOp::Geu, false),
        "bgt" => branch(BranchOp::Lt, true),
        "ble" => branch(BranchOp::Ge, true),
        "bgtu" => branch(BranchOp::Ltu, true),
        "bleu" => branch(BranchOp::Geu, true),
        "beqz" => branch_zero(BranchOp::Eq, false),
        "bnez" => branch_zero(BranchOp::Ne, false),
        "bltz" => branch_zero(BranchOp::Lt, false),
        "bgez" => branch_zero(BranchOp::Ge, false),
        "bgtz" => branch_zero(BranchOp::Lt, true),
        "blez" => branch_zero(BranchOp::Ge, true),
        "lb" => load(LoadOp::Lb),
        "lh" => load(LoadOp::Lh),
        "lw" => load(LoadOp::Lw),
        "lbu" => load(LoadOp::Lbu),
        "lhu" => load(LoadOp::Lhu),
        "sb" => store(StoreOp::Sb),
        "sh" => store(StoreOp::Sh),
        "sw" => store(StoreOp::Sw),
        "addi" => alu_imm(AluImmOp::Addi),
        "slti" => alu_imm(AluImmOp::Slti),
        "sltiu" => alu_imm(AluImmOp::Sltiu),
        "xori" => alu_imm(AluImmOp::Xori),
        "ori" => alu_imm(AluImmOp::Ori),
        "andi" => alu_imm(AluImmOp::Andi),
        "slli" => alu_imm(AluImmOp::Slli),
        "srli" => alu_imm(AluImmOp::Srli),
        "srai" => alu_imm(AluImmOp::Srai),
        "add" => alu(AluOp::Add),
        "sub" => alu(AluOp::Sub),
        "sll" => alu(AluOp::Sll),
        "slt" => alu(AluOp::Slt),
        "sltu" => alu(AluOp::Sltu),
        "xor" => alu(AluOp::Xor),
        "srl" => alu(AluOp::Srl),
        "sra" => alu(AluOp::Sra),
        "or" => alu(AluOp::Or),
        "and" => alu(AluOp::And),
        "mul" => alu(AluOp::Mul),
        "mulh" => alu(AluOp::Mulh),
        "mulhsu" => alu(AluOp::Mulhsu),
        "mulhu" => alu(AluOp::Mulhu),
        "div" => alu(AluOp::Div),
        "divu" => alu(AluOp::Divu),
        "rem" => alu(AluOp::Rem),
        "remu" => alu(AluOp::Remu),
        "fence" | "fence.i" => Ok(vec![Inst::Fence]),
        "ecall" => Ok(vec![Inst::Ecall]),
        "ebreak" => Ok(vec![Inst::Ebreak]),
        "csrrw" => csr_op(CsrOp::Rw, false),
        "csrrs" => csr_op(CsrOp::Rs, false),
        "csrrc" => csr_op(CsrOp::Rc, false),
        "csrrwi" => csr_op(CsrOp::Rw, true),
        "csrrsi" => csr_op(CsrOp::Rs, true),
        "csrrci" => csr_op(CsrOp::Rc, true),

        // --- neuromorphic extension ---
        "nmldl" => nm(NmOp::Nmldl),
        "nmldh" => nm(NmOp::Nmldh),
        "nmpn" => nm(NmOp::Nmpn),
        "nmdec" => nm(NmOp::Nmdec),

        // --- pseudo-instructions ---
        "nop" => Ok(vec![Inst::OpImm {
            op: AluImmOp::Addi,
            rd: Reg::ZERO,
            rs1: Reg::ZERO,
            imm: 0,
        }]),
        // `li`/`la` encode at the size layout decided: one `addi` or
        // one `lui` when the (possibly relaxed) sizing shrank them, the
        // full lui+addi pair otherwise.
        "li" | "la" => {
            expect_ops(2, ops, mnemonic, line)?;
            let rd = reg(&ops[0])?;
            let v = ev(&ops[1])? as i32;
            if words == 1 {
                if (-2048..=2047).contains(&v) {
                    Ok(vec![Inst::OpImm {
                        op: AluImmOp::Addi,
                        rd,
                        rs1: Reg::ZERO,
                        imm: v,
                    }])
                } else if v & 0xFFF == 0 {
                    Ok(vec![Inst::Lui { rd, imm: v }])
                } else {
                    Err(AsmError {
                        line,
                        message: format!("internal: `{mnemonic}` sized 1 word for {v:#x}"),
                    })
                }
            } else {
                Ok(expand_li(rd, v))
            }
        }
        "mv" => {
            expect_ops(2, ops, mnemonic, line)?;
            Ok(vec![Inst::OpImm {
                op: AluImmOp::Addi,
                rd: reg(&ops[0])?,
                rs1: reg(&ops[1])?,
                imm: 0,
            }])
        }
        "not" => {
            expect_ops(2, ops, mnemonic, line)?;
            Ok(vec![Inst::OpImm {
                op: AluImmOp::Xori,
                rd: reg(&ops[0])?,
                rs1: reg(&ops[1])?,
                imm: -1,
            }])
        }
        "neg" => {
            expect_ops(2, ops, mnemonic, line)?;
            Ok(vec![Inst::Op {
                op: AluOp::Sub,
                rd: reg(&ops[0])?,
                rs1: Reg::ZERO,
                rs2: reg(&ops[1])?,
            }])
        }
        "seqz" => {
            expect_ops(2, ops, mnemonic, line)?;
            Ok(vec![Inst::OpImm {
                op: AluImmOp::Sltiu,
                rd: reg(&ops[0])?,
                rs1: reg(&ops[1])?,
                imm: 1,
            }])
        }
        "snez" => {
            expect_ops(2, ops, mnemonic, line)?;
            Ok(vec![Inst::Op {
                op: AluOp::Sltu,
                rd: reg(&ops[0])?,
                rs1: Reg::ZERO,
                rs2: reg(&ops[1])?,
            }])
        }
        "j" => {
            expect_ops(1, ops, mnemonic, line)?;
            let imm = branch_target(&ops[0], pc, line, symbols)?;
            Ok(vec![Inst::Jal { rd: Reg::ZERO, imm }])
        }
        "jr" => {
            expect_ops(1, ops, mnemonic, line)?;
            Ok(vec![Inst::Jalr {
                rd: Reg::ZERO,
                rs1: reg(&ops[0])?,
                imm: 0,
            }])
        }
        "ret" => Ok(vec![Inst::Jalr {
            rd: Reg::ZERO,
            rs1: Reg::RA,
            imm: 0,
        }]),
        "call" => {
            expect_ops(1, ops, mnemonic, line)?;
            let imm = branch_target(&ops[0], pc, line, symbols)?;
            Ok(vec![Inst::Jal { rd: Reg::RA, imm }])
        }
        "tail" => {
            expect_ops(1, ops, mnemonic, line)?;
            let imm = branch_target(&ops[0], pc, line, symbols)?;
            Ok(vec![Inst::Jal { rd: Reg::ZERO, imm }])
        }
        "csrr" => {
            expect_ops(2, ops, mnemonic, line)?;
            let csr = match csr_by_name(ops[1].as_str()) {
                Some(c) => c,
                None => ev(&ops[1])? as u16,
            };
            Ok(vec![Inst::Csr {
                op: CsrOp::Rs,
                rd: reg(&ops[0])?,
                rs1: Reg::ZERO,
                csr,
            }])
        }
        "csrw" => {
            expect_ops(2, ops, mnemonic, line)?;
            let csr = match csr_by_name(ops[0].as_str()) {
                Some(c) => c,
                None => ev(&ops[0])? as u16,
            };
            Ok(vec![Inst::Csr {
                op: CsrOp::Rw,
                rd: Reg::ZERO,
                rs1: reg(&ops[1])?,
                csr,
            }])
        }
        _ => Err(AsmError {
            line,
            message: format!("unknown mnemonic `{mnemonic}`"),
        }),
    }
}

/// lui+addi expansion of a 32-bit constant load.
fn expand_li(rd: Reg, v: i32) -> Vec<Inst> {
    let lo = (v << 20) >> 20; // sign-extended low 12 bits
    let hi = v.wrapping_sub(lo) as u32; // upper 20 bits, compensated
    vec![
        Inst::Lui { rd, imm: hi as i32 },
        Inst::OpImm {
            op: AluImmOp::Addi,
            rd,
            rs1: rd,
            imm: lo,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    fn asm(src: &str) -> Program {
        Assembler::new().assemble(src).expect("assembly failed")
    }

    #[test]
    fn simple_program_layout() {
        let p = asm("
            .text
            _start: addi a0, zero, 1
                    add  a1, a0, a0
                    ebreak
        ");
        assert_eq!(p.entry, DEFAULT_TEXT_BASE);
        assert_eq!(p.words().len(), 3);
        assert_eq!(p.symbol("_start"), Some(DEFAULT_TEXT_BASE));
    }

    #[test]
    fn li_small_is_one_word() {
        assert_eq!(asm("li a0, 42").words().len(), 1);
        assert_eq!(asm("li a0, -2048").words().len(), 1);
    }

    #[test]
    fn li_large_is_two_words() {
        let p = asm("li a0, 0x12345678\nebreak");
        assert_eq!(p.words().len(), 3);
        // Verify the expansion loads the right value: lui + addi.
        let w = p.words();
        let i0 = decode(w[0]).unwrap();
        let i1 = decode(w[1]).unwrap();
        match (i0, i1) {
            (
                Inst::Lui { imm: hi, .. },
                Inst::OpImm {
                    op: AluImmOp::Addi,
                    imm: lo,
                    ..
                },
            ) => {
                assert_eq!(hi.wrapping_add(lo), 0x12345678);
            }
            other => panic!("unexpected expansion {other:?}"),
        }
    }

    #[test]
    fn li_sizes_match_between_passes() {
        // Regression: 0xffffffff is -1 after truncation, so both passes
        // must agree on a one-word `li` (a mismatch shifts every label).
        let p = asm("
            _start: li t6, 0xffffffff
            after:  ebreak
        ");
        assert_eq!(p.symbol("after"), Some(DEFAULT_TEXT_BASE + 4));
        assert_eq!(p.words().len(), 2);
    }

    #[test]
    fn li_negative_edge_cases() {
        for v in [
            -1i32,
            i32::MIN,
            i32::MAX,
            0x800,
            -0x801,
            0x7FFFF800u32 as i32,
        ] {
            let p = asm(&format!("li a0, {v}\nebreak"));
            let w = p.words();
            match decode(w[0]).unwrap() {
                Inst::OpImm { imm, .. } if w.len() == 2 => assert_eq!(imm, v),
                Inst::Lui { imm: hi, .. } => match decode(w[1]).unwrap() {
                    Inst::OpImm { imm: lo, .. } => {
                        assert_eq!(hi.wrapping_add(lo), v, "li {v}");
                    }
                    other => panic!("{other:?}"),
                },
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn labels_and_branches() {
        let p = asm("
            _start: li   t0, 10
            loop:   addi t0, t0, -1
                    bnez t0, loop
                    j    done
                    nop
            done:   ebreak
        ");
        let w = p.words();
        // bnez is at index 2 -> pc 8; loop at 4; offset -4.
        match decode(w[2]).unwrap() {
            Inst::Branch {
                op: BranchOp::Ne,
                imm,
                ..
            } => assert_eq!(imm, -4),
            other => panic!("{other:?}"),
        }
        // j done: at pc 12, done at 20, offset 8.
        match decode(w[3]).unwrap() {
            Inst::Jal { rd: Reg(0), imm } => assert_eq!(imm, 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn data_directives_and_symbols() {
        let p = asm("
            .data 0x1000
            table:  .word 1, 2, 3, 0xdeadbeef
            bytes:  .byte 1, 2
                    .align 2
            half:   .half 0x1234
            .text
            _start: la a0, table
                    lw a1, (a0)
                    ebreak
        ");
        assert_eq!(p.symbol("table"), Some(0x1000));
        assert_eq!(p.symbol("bytes"), Some(0x1010));
        assert_eq!(p.symbol("half"), Some(0x1014));
        let data_seg = p.segments.iter().find(|s| s.base == 0x1000).unwrap();
        assert_eq!(&data_seg.data[..4], &1u32.to_le_bytes());
        assert_eq!(&data_seg.data[12..16], &0xdeadbeefu32.to_le_bytes());
    }

    #[test]
    fn equ_and_expressions() {
        let p = asm("
            .equ BASE, 0x2000
            .equ COUNT, 8
            .data BASE + COUNT * 4
            x: .word (1 << 4) | 3, 'A', ~0
            .text
            _start: nop
        ");
        assert_eq!(p.symbol("x"), Some(0x2020));
        let seg = p.segments.iter().find(|s| s.base == 0x2020).unwrap();
        assert_eq!(&seg.data[..4], &19u32.to_le_bytes());
        assert_eq!(&seg.data[4..8], &65u32.to_le_bytes());
        assert_eq!(&seg.data[8..12], &u32::MAX.to_le_bytes());
    }

    #[test]
    fn hi_lo_relocation() {
        let p = asm("
            .equ TARGET, 0x12345FFC
            _start: lui  a0, %hi(TARGET)
                    addi a0, a0, %lo(TARGET)
                    ebreak
        ");
        let w = p.words();
        let (hi, lo) = match (decode(w[0]).unwrap(), decode(w[1]).unwrap()) {
            (Inst::Lui { imm: hi, .. }, Inst::OpImm { imm: lo, .. }) => (hi, lo),
            other => panic!("{other:?}"),
        };
        assert_eq!(hi.wrapping_add(lo) as u32, 0x12345FFC);
    }

    #[test]
    fn paper_listing_1_assembles() {
        // The exact code from Listing 1 of the paper.
        let p = asm("
            lw a6, 4(a3)
            lw a7, 8(a3)
            nmldl x0, a6, a7 # load a,b,c,d parameters
            lw t5, (a4)      # read the thalamic
            lw a7, (a0)      # read current
            lw a6, (a3)      # read vu
            add a7, a7, t5
            add a2, x0, a3
            nmpn a2, a6, a7  # process neuron, get spike/nospike, store VU word
        ");
        let w = p.words();
        assert_eq!(w.len(), 9);
        assert!(matches!(
            decode(w[2]).unwrap(),
            Inst::Nm {
                op: NmOp::Nmldl,
                ..
            }
        ));
        assert!(matches!(
            decode(w[8]).unwrap(),
            Inst::Nm {
                op: NmOp::Nmpn,
                rd: Reg(12),
                rs1: Reg(16),
                rs2: Reg(17)
            }
        ));
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let e = Assembler::new()
            .assemble("nop\nbadop x1, x2\n")
            .unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("badop"));

        let e = Assembler::new().assemble("lw a0, 4(qq)").unwrap_err();
        assert!(e.message.contains("bad register"));

        let e = Assembler::new().assemble("addi a0, a1, 5000").unwrap_err();
        assert!(e.message.contains("out of 12-bit range"));

        let e = Assembler::new().assemble("j nowhere").unwrap_err();
        assert!(e.message.contains("undefined symbol"));

        let e = Assembler::new().assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn comments_all_styles() {
        let p = asm("
            nop # hash
            nop // slashes
            nop ; semicolon
        ");
        assert_eq!(p.words().len(), 3);
    }

    #[test]
    fn csr_names() {
        let p = asm("
            _start: csrr a0, mcycle
                    csrr a1, minstret
                    csrr a2, mhartid
                    ebreak
        ");
        let w = p.words();
        match decode(w[0]).unwrap() {
            Inst::Csr { csr, .. } => assert_eq!(csr, 0xB00),
            other => panic!("{other:?}"),
        }
        match decode(w[2]).unwrap() {
            Inst::Csr { csr, .. } => assert_eq!(csr, 0xF14),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn forward_references_resolve() {
        let p = asm("
            _start: j   end
                    .word 0
            end:    ebreak
        ");
        match decode(p.words()[0]).unwrap() {
            Inst::Jal { imm, .. } => assert_eq!(imm, 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn space_and_org() {
        let p = asm("
            .data 0x100
            a: .space 16
            b: .word 7
            .text
            _start: nop
        ");
        assert_eq!(p.symbol("b"), Some(0x110));
    }

    // --- relaxation + peepholes ---

    fn asm_relaxed(src: &str) -> Program {
        Assembler::new()
            .relax(true)
            .assemble(src)
            .expect("assembly failed")
    }

    /// Execute-independent check: both variants must load the same
    /// constant into the same register.
    fn first_li_value(p: &Program) -> i32 {
        match decode(p.words()[0]).unwrap() {
            Inst::OpImm { imm, .. } => imm,
            Inst::Lui { imm: hi, .. } => match decode(p.words()[1]).unwrap() {
                Inst::OpImm {
                    op: AluImmOp::Addi,
                    imm: lo,
                    ..
                } => hi.wrapping_add(lo),
                _ => hi,
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relax_shrinks_symbolic_small_li() {
        let src = "
            .equ TAU, 2
            _start: li t6, TAU
            after:  ebreak
        ";
        let unrelaxed = asm(src);
        let relaxed = asm_relaxed(src);
        assert_eq!(unrelaxed.symbol("after"), Some(DEFAULT_TEXT_BASE + 8));
        assert_eq!(relaxed.symbol("after"), Some(DEFAULT_TEXT_BASE + 4));
        assert_eq!(first_li_value(&relaxed), 2);
        match decode(relaxed.words()[0]).unwrap() {
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg(31),
                rs1: Reg(0),
                imm: 2,
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relax_shrinks_aligned_li_to_lui() {
        for v in ["0x10004000", "0x200000", "0x10040000"] {
            let relaxed = asm_relaxed(&format!("_start: li a0, {v}\nebreak"));
            assert_eq!(relaxed.words().len(), 2, "li {v} + ebreak");
            let expect = i64::from_str_radix(&v[2..], 16).unwrap() as i32;
            match decode(relaxed.words()[0]).unwrap() {
                Inst::Lui { rd: Reg(10), imm } => assert_eq!(imm, expect),
                other => panic!("{other:?}"),
            }
        }
        // MMIO-style constants (low bits set) still need both words.
        let p = asm_relaxed("_start: li a0, 0xf000001c\nebreak");
        assert_eq!(p.words().len(), 3);
        assert_eq!(first_li_value(&p), 0xf000001cu32 as i32);
    }

    #[test]
    fn relax_keeps_branch_targets_correct_across_shrinks() {
        // The branch crosses a li that shrinks from 2 words to 1; its
        // encoded offset must follow the move.
        let p = asm_relaxed(
            "
            .equ K, 7
            _start: bnez a0, out
                    li   t0, K
            out:    ebreak
        ",
        );
        assert_eq!(p.words().len(), 3);
        match decode(p.words()[0]).unwrap() {
            Inst::Branch { imm, .. } => assert_eq!(imm, 8),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relax_grow_fixpoint_settles() {
        // A symbolic li of a label that only fits one word if the label
        // stays below 2048 — but the program also contains enough code
        // that a mis-settled layout would corrupt the branch below.
        // (0x1000-aligned labels exercise the lui-only growth path.)
        let p = asm_relaxed(
            "
            _start: li a0, target
                    j  done
            .org 0x1000
            target: nop
            done:   ebreak
        ",
        );
        assert_eq!(p.symbol("target"), Some(0x1000));
        assert_eq!(first_li_value(&p), 0x1000);
        match decode(p.words()[0]).unwrap() {
            Inst::Lui { imm: 0x1000, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relax_deletes_redundant_moves_but_keeps_nops() {
        let p = asm_relaxed(
            "
            _start: mv   a0, a0
                    addi a1, a1, 0
                    add  a2, a2, x0
                    nop
                    ebreak
        ",
        );
        // Only nop + ebreak survive; nop (a write to x0) is kept as a
        // deliberate pipeline filler.
        assert_eq!(p.words().len(), 2);
        match decode(p.words()[0]).unwrap() {
            Inst::OpImm {
                rd: Reg(0),
                rs1: Reg(0),
                imm: 0,
                ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relax_collapses_branch_over_jump() {
        let p = asm_relaxed(
            "
            _start: beqz a0, skip
                    j    far
            skip:   ebreak
            far:    nop
                    ebreak
        ",
        );
        // beqz/j collapse into one bnez straight to far.
        let w = p.words();
        assert_eq!(w.len(), 4);
        match decode(w[0]).unwrap() {
            Inst::Branch {
                op: BranchOp::Ne,
                imm,
                ..
            } => assert_eq!(DEFAULT_TEXT_BASE + imm as u32, p.symbol("far").unwrap()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relax_branch_over_jump_respects_labels_on_the_jump() {
        // Something jumps to the `j` itself: the collapse must not fire.
        let p = asm_relaxed(
            "
            _start: beqz a0, skip
            hop:    j    far
            skip:   ebreak
            far:    j    hop
        ",
        );
        assert_eq!(p.words().len(), 4);
        match decode(p.words()[0]).unwrap() {
            Inst::Branch {
                op: BranchOp::Eq, ..
            } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn relax_load_after_store_through_sp_only() {
        // Stack slot round-trip collapses to a move…
        let p = asm_relaxed(
            "
            _start: sw a0, 4(sp)
                    lw a1, 4(sp)
                    ebreak
        ",
        );
        let w = p.words();
        assert_eq!(w.len(), 3);
        match decode(w[1]).unwrap() {
            Inst::OpImm {
                op: AluImmOp::Addi,
                rd: Reg(11),
                rs1: Reg(10),
                imm: 0,
            } => {}
            other => panic!("{other:?}"),
        }
        // …same register disappears entirely…
        let p = asm_relaxed("_start: sw a0, (sp)\nlw a0, (sp)\nebreak");
        assert_eq!(p.words().len(), 2);
        // …but a store-then-load through any other base is a potential
        // MMIO handshake (the engine barrier does exactly this) and must
        // survive untouched.
        let p = asm_relaxed("_start: sw x0, (t0)\nlw t2, (t0)\nebreak");
        assert_eq!(p.words().len(), 3);
    }

    #[test]
    fn relax_off_is_byte_identical_to_legacy_layout() {
        let src = "
            .equ TAU, 2
            _start: li t6, TAU
                    li a0, 0x10004000
                    sw a0, 4(sp)
                    lw a1, 4(sp)
                    beqz a1, skip
                    j   end
            skip:   nop
            end:    ebreak
        ";
        let p = asm(src);
        // Every li is conservative (symbolic or large => 2 words), no
        // peephole fires: 2 + 2 + 1 + 1 + 1 + 1 + 1 + 1 words.
        assert_eq!(p.words().len(), 10);
        // Relaxed: both li shrink, lw becomes mv, beqz/j collapse:
        // li + li + sw + mv + bnez + nop + ebreak.
        let relaxed = asm_relaxed(src);
        assert_eq!(relaxed.words().len(), 7);
    }
}

//! DCU — the Neuron Decay Unit.
//!
//! Implements the `nmdec` instruction: one forward-Euler step of the
//! AMPA-receptor exponential decay of the synaptic current (Eq. 4–6 of the
//! paper):
//!
//! ```text
//! Isyn' = Isyn - (Isyn / tau) * h
//! ```
//!
//! Because the core has no divider, the DCU approximates `x / tau` with a
//! sum of arithmetic right shifts ("division approximator", Table II). The
//! shift factors range from 1 to 9; each supported divisor has a fixed
//! decomposition chosen to minimise the approximation error.

use izhi_fixed::Q15_16;

use crate::nmregs::NmRegs;

/// Shift decompositions for `x / d`, `d = 1..=9`, using shift factors 1..9
/// (0 stands for the identity term `x` itself, used only by `/1`).
///
/// Entries 2..=8 are exactly the decompositions published in Table II of
/// the paper; `/1` and `/9` complete the `τ ∈ [1, 9]` range the `nmdec`
/// operand allows.
pub const SHIFT_TABLES: [&[u32]; 9] = [
    &[0],          // /1  (exact)
    &[1],          // /2  (exact)
    &[2, 4, 6, 8], // /3
    &[2],          // /4  (exact)
    &[3, 4, 7, 8], // /5
    &[3, 5, 7, 9], // /6
    &[3, 6, 9],    // /7
    &[3],          // /8  (exact)
    &[4, 5, 6, 9], // /9
];

/// The Decay Unit. Stateless combinational block, like the NPU.
pub struct Dcu;

impl Dcu {
    /// Approximate `x / divisor` with the shift array. `divisor` must be in
    /// `1..=9`; out-of-range values saturate into that interval (hardware
    /// decodes only 4 bits of the τ operand).
    #[inline]
    pub fn approx_div(x: Q15_16, divisor: u32) -> Q15_16 {
        let d = divisor.clamp(1, 9) as usize;
        let mut acc: i32 = 0;
        for &s in SHIFT_TABLES[d - 1] {
            acc = acc.wrapping_add(x.raw() >> s);
        }
        Q15_16::from_raw(acc)
    }

    /// The approximation factor `sum(2^-s)` realised for a divisor, as f64.
    pub fn approx_factor(divisor: u32) -> f64 {
        let d = divisor.clamp(1, 9) as usize;
        SHIFT_TABLES[d - 1]
            .iter()
            .map(|&s| 1.0 / (1u64 << s) as f64)
            .sum()
    }

    /// Relative approximation error in percent, as reported in Table II:
    /// `AE = (approx - 1/d) / (1/d) * 100`.
    pub fn approximation_error_pct(divisor: u32) -> f64 {
        let d = divisor.clamp(1, 9) as f64;
        let exact = 1.0 / d;
        (Self::approx_factor(divisor) - exact) / exact * 100.0
    }

    /// One decay step: `Isyn - (Isyn/τ)·h`, with the `h` multiply realised
    /// as an arithmetic right shift (1 for 0.5 ms, 3 for 0.125 ms).
    #[inline]
    pub fn decay(regs: &NmRegs, isyn: Q15_16, tau: u32) -> Q15_16 {
        let dec = Self::approx_div(isyn, tau).shr(regs.h.shift());
        Q15_16::from_raw(isyn.raw().wrapping_sub(dec.raw()))
    }

    /// Execute the `nmdec` instruction: rs1 carries Isyn (Q15.16 raw bits),
    /// rs2 carries the τ selector; the result is the decayed current.
    #[inline]
    pub fn exec_nmdec(regs: &NmRegs, rs1: u32, rs2: u32) -> u32 {
        Self::decay(regs, Q15_16::from_raw(rs1 as i32), rs2).raw() as u32
    }

    /// Exact real-valued decay step for comparison:
    /// `Isyn * (1 - h/τ)` with h in units of the decay constant.
    pub fn decay_exact(regs: &NmRegs, isyn: f64, tau: f64) -> f64 {
        isyn - isyn / tau * regs.h.millis()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmregs::{HStep, NmRegs};

    #[test]
    fn exact_divisors_have_zero_error() {
        for d in [1, 2, 4, 8] {
            assert_eq!(Dcu::approximation_error_pct(d), 0.0, "/{d}");
        }
    }

    #[test]
    fn table_ii_errors_match_paper() {
        // Paper Table II: /3 and /5 -> 0.3906 %, /7 -> 0.1953 % (magnitudes).
        assert!((Dcu::approximation_error_pct(3).abs() - 0.390625).abs() < 1e-9);
        assert!((Dcu::approximation_error_pct(5).abs() - 0.390625).abs() < 1e-9);
        assert!((Dcu::approximation_error_pct(7).abs() - 0.1953125).abs() < 1e-9);
        // /6: the paper prints 12.1093 %, but the published decomposition
        // (x>>3 + x>>5 + x>>7 + x>>9 = 0.166015625 ~ 1/6) actually realises
        // 0.3906 % — we implement the decomposition, not the typo.
        assert!((Dcu::approximation_error_pct(6).abs() - 0.390625).abs() < 1e-9);
    }

    #[test]
    fn all_divisors_under_half_percent() {
        // §V-B: "values of AE lower than 0.5 %, which we tested to be
        // satisfactory for the SNN simulation" (for the shipped table).
        for d in 1..=9 {
            assert!(
                Dcu::approximation_error_pct(d).abs() < 0.5,
                "/{d}: {}",
                Dcu::approximation_error_pct(d)
            );
        }
    }

    #[test]
    fn seven_example_from_paper() {
        // §V-B works x/7 ~ (x>>3)+(x>>6)+(x>>9) = 0.142578125 x.
        assert!((Dcu::approx_factor(7) - 0.142578125).abs() < 1e-12);
        let x = Q15_16::from_f64(7.0);
        let q = Dcu::approx_div(x, 7);
        assert!((q.to_f64() - 1.0).abs() < 0.01, "{}", q.to_f64());
    }

    #[test]
    fn decay_reduces_magnitude_towards_zero() {
        let mut regs = NmRegs::default();
        regs.set_h(HStep::Half);
        for start in [500.0_f64, -500.0, 3.25, -3.25] {
            let mut i = Q15_16::from_f64(start);
            for _ in 0..200 {
                let next = Dcu::decay(&regs, i, 4);
                assert!(next.to_f64().abs() <= i.to_f64().abs(), "{start}");
                i = next;
            }
            assert!(
                i.to_f64().abs() < start.abs() * 0.01,
                "did not decay: {}",
                i.to_f64()
            );
        }
    }

    #[test]
    fn decay_matches_exact_model() {
        let mut regs = NmRegs::default();
        regs.set_h(HStep::Half);
        let mut fx = Q15_16::from_f64(100.0);
        let mut ex = 100.0_f64;
        for _ in 0..50 {
            fx = Dcu::decay(&regs, fx, 5);
            ex = Dcu::decay_exact(&regs, ex, 5.0);
            // within approximation error + quantisation
            assert!((fx.to_f64() - ex).abs() < 0.25, "{} vs {}", fx.to_f64(), ex);
        }
    }

    #[test]
    fn eighth_step_decays_slower_per_step() {
        let mut h2 = NmRegs::default();
        h2.set_h(HStep::Half);
        let mut h8 = NmRegs::default();
        h8.set_h(HStep::Eighth);
        let x = Q15_16::from_f64(64.0);
        let d2 = Dcu::decay(&h2, x, 3);
        let d8 = Dcu::decay(&h8, x, 3);
        assert!(d8.to_f64() > d2.to_f64());
    }

    #[test]
    fn nmdec_bit_roundtrip() {
        let mut regs = NmRegs::default();
        regs.set_h(HStep::Half);
        let isyn = Q15_16::from_f64(-42.5);
        let out = Dcu::exec_nmdec(&regs, isyn.raw() as u32, 6);
        assert_eq!(out as i32, Dcu::decay(&regs, isyn, 6).raw());
    }

    #[test]
    fn tau_out_of_range_clamps() {
        let x = Q15_16::from_f64(10.0);
        assert_eq!(Dcu::approx_div(x, 0), Dcu::approx_div(x, 1));
        assert_eq!(Dcu::approx_div(x, 100), Dcu::approx_div(x, 9));
    }
}

//! NPU — the Neuron Processing Unit.
//!
//! Implements the single-cycle forward-Euler Izhikevich update behind the
//! `nmpn` instruction (Eq. 3 of the paper):
//!
//! ```text
//! spike = (v >= 30 mV)                      // threshold test
//! if spike { v <- c; u <- u + d }           // post-spike reset (Eq. 2)
//! dv = 0.04 v^2 + 5 v + 140 - u + Isyn
//! du = a (b v - u)
//! v' = v + h * dv                           // h multiply is a right shift
//! u' = u + h * du
//! if pin && v' < c { v' = c }               // optional rebound clamp
//! ```
//!
//! The threshold/reset ordering follows Izhikevich's original MATLAB
//! implementation (reset *then* integrate within the same timestep), which
//! the paper reproduces on hardware. All arithmetic uses the variable-width
//! accumulator (`izhi_fixed::Wide`) exactly as the VHDL `sfixed` datapath
//! does, with one final round-saturate resize back to Q7.8 per variable.

use crate::nmregs::NmRegs;
use izhi_fixed::qformat::{pack_vu, unpack_vu};
use izhi_fixed::{ResizeMode, Wide, Q15_16, Q7_8};

/// Fractional bits used for the 0.04 constant inside the datapath. 18 bits
/// give |0.04 - round(0.04*2^18)/2^18| < 2^-19, far below the Q7.8 output
/// resolution.
const C004_FRAC: u32 = 18;
/// 0.04 in Q*.18 (raw mantissa).
const C004_RAW: i64 = 10486; // round(0.04 * 2^18)

/// Firing threshold 30 mV in Q7.8.
pub const V_TH_Q7_8: Q7_8 = Q7_8::from_raw(30 << 8);

/// Result of one `nmpn` execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NpuOutput {
    /// Updated VU word (v in bits 31..16, u in bits 15..0, both Q7.8).
    pub vu: u32,
    /// Whether the neuron fired in this timestep.
    pub spike: bool,
}

/// The Neuron Processing Unit. Stateless: all state lives in [`NmRegs`] and
/// the VU word, mirroring the combinational RTL block.
pub struct NpUnit;

impl NpUnit {
    /// Execute one `nmpn` update on a packed VU word.
    #[inline]
    pub fn update(regs: &NmRegs, vu: u32, isyn: Q15_16) -> NpuOutput {
        let (v, u) = unpack_vu(vu);
        let (v2, u2, spike) = Self::update_parts(regs, v, u, isyn);
        NpuOutput {
            vu: pack_vu(v2, u2),
            spike,
        }
    }

    /// Execute one update on unpacked state; returns `(v', u', spike)`.
    pub fn update_parts(regs: &NmRegs, v: Q7_8, u: Q7_8, isyn: Q15_16) -> (Q7_8, Q7_8, bool) {
        let p = regs.params;
        let shift = regs.h.shift();

        // Threshold test and post-spike reset (Eq. 2), before integration,
        // as in the original MATLAB reference.
        let spike = v >= V_TH_Q7_8;
        let (v, u) = if spike {
            let u_reset = u
                .widen()
                .add(p.d.widen())
                .to_q7_8(ResizeMode::RoundSaturate);
            (p.c, u_reset)
        } else {
            (v, u)
        };

        let vw = v.widen(); // q8
        let uw = u.widen(); // q8
        let iw = isyn.widen(); // q16

        // dv = 0.04 v^2 + 5 v + 140 - u + I   (accumulator grows to q34)
        let v_sq = vw.mul(vw); // q16
        let quad = Wide::new(C004_RAW, C004_FRAC).mul(v_sq); // q34
        let dv = quad.add(vw.mul_int(5)).add(Wide::int(140)).sub(uw).add(iw);

        // du = a (b v - u)                    (q19 -> q30)
        let bv = p.b.widen().mul(vw); // q19
        let du = p.a.widen().mul(bv.sub(uw)); // q30

        // Euler step: multiply by h via arithmetic right shift, then one
        // round-saturate resize back to storage format.
        let v_next = vw.add(dv.shr(shift)).to_q7_8(ResizeMode::RoundSaturate);
        let u_next = uw.add(du.shr(shift)).to_q7_8(ResizeMode::RoundSaturate);

        // Optional pin clamp: never let v fall below the reset potential.
        let v_next = if regs.pin && v_next < p.c {
            p.c
        } else {
            v_next
        };

        (v_next, u_next, spike)
    }

    /// The exact real-valued model the fixed-point datapath approximates,
    /// including the quantised 0.04 constant and the reset-then-integrate
    /// ordering, but with no rounding of intermediates. Used by tests to
    /// bound the datapath's rounding error.
    pub fn update_parts_exact(regs: &NmRegs, v: f64, u: f64, isyn: f64) -> (f64, f64, bool) {
        let p = regs.params.dequantize();
        let h = regs.h.millis();
        let spike = v >= 30.0;
        let (v, u) = if spike { (p.c, u + p.d) } else { (v, u) };
        let c004 = C004_RAW as f64 / (1u64 << C004_FRAC) as f64;
        let dv = c004 * v * v + 5.0 * v + 140.0 - u + isyn;
        let du = p.a * (p.b * v - u);
        let mut v_next = v + h * dv;
        let u_next = u + h * du;
        if regs.pin && v_next < p.c {
            v_next = p.c;
        }
        (v_next, u_next, spike)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nmregs::HStep;
    use crate::params::IzhParams;

    fn rs_regs(h: HStep) -> NmRegs {
        let mut regs = NmRegs::default();
        regs.load_params(&IzhParams::regular_spiking());
        regs.set_h(h);
        regs
    }

    #[test]
    fn c004_constant_accuracy() {
        let c = C004_RAW as f64 / (1u64 << C004_FRAC) as f64;
        assert!((c - 0.04).abs() < 1.0 / (1u64 << 19) as f64);
    }

    #[test]
    fn resting_neuron_stays_at_rest() {
        let regs = rs_regs(HStep::Half);
        let p = IzhParams::regular_spiking();
        let (v0, u0) = p.resting_state(0.0).unwrap();
        let mut v = Q7_8::from_f64(v0);
        let mut u = Q7_8::from_f64(u0);
        for _ in 0..10_000 {
            let (v2, u2, spike) = NpUnit::update_parts(&regs, v, u, Q15_16::ZERO);
            assert!(!spike);
            v = v2;
            u = u2;
        }
        // Stays within 1 mV of the analytic rest point.
        assert!((v.to_f64() - v0).abs() < 1.0, "v drifted to {}", v.to_f64());
    }

    #[test]
    fn tonic_spiking_under_constant_current() {
        let regs = rs_regs(HStep::Half);
        let mut v = Q7_8::from_f64(-65.0);
        let mut u = Q7_8::from_f64(-13.0);
        let i = Q15_16::from_f64(10.0);
        let mut spikes = 0;
        for _ in 0..2000 {
            // 1 second at h = 0.5 ms
            let (v2, u2, s) = NpUnit::update_parts(&regs, v, u, i);
            v = v2;
            u = u2;
            spikes += s as u32;
        }
        // An RS cell at I = 10 fires tonically at a few to tens of Hz.
        assert!((2..=100).contains(&spikes), "spikes = {spikes}");
    }

    #[test]
    fn reset_applies_c_and_d() {
        let regs = rs_regs(HStep::Half);
        let v = Q7_8::from_f64(31.0); // above threshold
        let u = Q7_8::from_f64(-10.0);
        let (v2, u2, spike) = NpUnit::update_parts(&regs, v, u, Q15_16::ZERO);
        assert!(spike);
        // After reset v integrates from c = -65 with dv = -14 at u = -2,
        // landing at -65 + 0.5*(-14) = -72.
        assert!((v2.to_f64() - (-72.0)).abs() < 1.0, "v2 = {}", v2.to_f64());
        // u gets +d (=8) then a small Euler correction.
        assert!((u2.to_f64() - (-2.0)).abs() < 0.5, "u2 = {}", u2.to_f64());
    }

    #[test]
    fn threshold_is_30mv() {
        let regs = rs_regs(HStep::Half);
        let just_below = Q7_8::from_raw((30 << 8) - 1);
        let at = Q7_8::from_raw(30 << 8);
        let (_, _, s1) = NpUnit::update_parts(&regs, just_below, Q7_8::ZERO, Q15_16::ZERO);
        let (_, _, s2) = NpUnit::update_parts(&regs, at, Q7_8::ZERO, Q15_16::ZERO);
        assert!(!s1);
        assert!(s2);
    }

    #[test]
    fn pin_clamps_voltage_at_reset_potential() {
        let mut regs = rs_regs(HStep::Half);
        regs.set_pin(true);
        // Strong negative current would normally drag v below c.
        let v = Q7_8::from_f64(-64.0);
        let u = Q7_8::from_f64(20.0);
        let i = Q15_16::from_f64(-500.0);
        let (v2, _, _) = NpUnit::update_parts(&regs, v, u, i);
        assert_eq!(v2, regs.params.c);
        // Without pin it undershoots.
        regs.set_pin(false);
        let (v3, _, _) = NpUnit::update_parts(&regs, v, u, i);
        assert!(v3 < regs.params.c);
    }

    #[test]
    fn fixed_tracks_exact_model_within_lsb_bound() {
        let regs = rs_regs(HStep::Half);
        let mut v = Q7_8::from_f64(-65.0);
        let mut u = Q7_8::from_f64(-13.0);
        let mut ve = v.to_f64();
        let mut ue = u.to_f64();
        let i = Q15_16::from_f64(4.0);
        // Single-step error must stay within a couple of output LSBs
        // (re-sync the exact model to the fixed state each step so error
        // does not compound in this test).
        for _ in 0..500 {
            let (v2, u2, _) = NpUnit::update_parts(&regs, v, u, i);
            let (ve2, ue2, _) = NpUnit::update_parts_exact(&regs, ve, ue, i.to_f64());
            assert!(
                (v2.to_f64() - ve2).abs() <= 2.5 / 256.0,
                "{} vs {ve2}",
                v2.to_f64()
            );
            assert!((u2.to_f64() - ue2).abs() <= 2.5 / 256.0);
            v = v2;
            u = u2;
            ve = v.to_f64();
            ue = u.to_f64();
        }
    }

    #[test]
    fn half_and_eighth_steps_converge_to_same_trajectory() {
        // Integrating 1 ms as 2x0.5ms or 8x0.125ms should give close results
        // in the subthreshold regime.
        let regs_h = rs_regs(HStep::Half);
        let regs_e = rs_regs(HStep::Eighth);
        let i = Q15_16::from_f64(3.0);
        let mut vh = Q7_8::from_f64(-70.0);
        let mut uh = Q7_8::from_f64(-14.0);
        let (mut ve, mut ue) = (vh, uh);
        for _ in 0..20 {
            for _ in 0..2 {
                let (a, b, _) = NpUnit::update_parts(&regs_h, vh, uh, i);
                vh = a;
                uh = b;
            }
            for _ in 0..8 {
                let (a, b, _) = NpUnit::update_parts(&regs_e, ve, ue, i);
                ve = a;
                ue = b;
            }
        }
        assert!((vh.to_f64() - ve.to_f64()).abs() < 1.0, "{} vs {}", vh, ve);
    }

    #[test]
    fn vu_word_update_matches_parts() {
        let regs = rs_regs(HStep::Half);
        let v = Q7_8::from_f64(-60.0);
        let u = Q7_8::from_f64(-12.0);
        let i = Q15_16::from_f64(7.5);
        let out = NpUnit::update(&regs, pack_vu(v, u), i);
        let (v2, u2, s) = NpUnit::update_parts(&regs, v, u, i);
        assert_eq!(out.vu, pack_vu(v2, u2));
        assert_eq!(out.spike, s);
    }

    #[test]
    fn saturation_instead_of_wraparound_on_extreme_input() {
        let regs = rs_regs(HStep::Half);
        let (v2, _, _) = NpUnit::update_parts(
            &regs,
            Q7_8::from_f64(29.9),
            Q7_8::from_f64(-128.0),
            Q15_16::from_f64(30000.0),
        );
        assert_eq!(v2, Q7_8::MAX); // saturates high, never wraps negative
    }
}

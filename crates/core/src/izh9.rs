//! The 9-parameter Izhikevich model (the paper's §II-B notes the two main
//! variants: the 4-parameter form the hardware implements, and this more
//! expressive one from Izhikevich's 2007 *Dynamical Systems in
//! Neuroscience* formulation).
//!
//! ```text
//! C dv/dt = k (v - vr)(v - vt) - u + I
//!   du/dt = a (b (v - vr) - u)
//! if v >= v_peak: v <- c, u <- u + d
//! ```
//!
//! The NPU does not implement this variant (a future-work extension of the
//! paper's design); we provide the double-precision reference so network
//! studies can compare the models, plus the mapping back to the
//! 4-parameter form where one exists.

/// Parameters of the 9-parameter model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Izh9Params {
    /// Membrane capacitance (pF).
    pub cap: f64,
    /// Quadratic gain k.
    pub k: f64,
    /// Resting potential (mV).
    pub vr: f64,
    /// Instantaneous threshold (mV).
    pub vt: f64,
    /// Spike cutoff (mV).
    pub v_peak: f64,
    /// Recovery time scale.
    pub a: f64,
    /// Recovery sensitivity.
    pub b: f64,
    /// Post-spike reset voltage (mV).
    pub c: f64,
    /// Post-spike recovery increment.
    pub d: f64,
}

impl Izh9Params {
    /// Neocortical regular-spiking pyramidal cell (Izhikevich 2007, ch. 8).
    pub const fn regular_spiking() -> Self {
        Izh9Params {
            cap: 100.0,
            k: 0.7,
            vr: -60.0,
            vt: -40.0,
            v_peak: 35.0,
            a: 0.03,
            b: -2.0,
            c: -50.0,
            d: 100.0,
        }
    }

    /// Fast-spiking interneuron (ch. 8; the u-nullcline nonlinearity is
    /// approximated linearly here).
    pub const fn fast_spiking() -> Self {
        Izh9Params {
            cap: 20.0,
            k: 1.0,
            vr: -55.0,
            vt: -40.0,
            v_peak: 25.0,
            a: 0.2,
            b: 0.025,
            c: -45.0,
            d: 0.0,
        }
    }

    /// Intrinsically-bursting cell (ch. 8).
    pub const fn intrinsically_bursting() -> Self {
        Izh9Params {
            cap: 150.0,
            k: 1.2,
            vr: -75.0,
            vt: -45.0,
            v_peak: 50.0,
            a: 0.01,
            b: 5.0,
            c: -56.0,
            d: 130.0,
        }
    }

    /// The classic 4-parameter model expressed in this form:
    /// `0.04 v² + 5 v + 140 = k (v-vr)(v-vt)` with `C = 1`, `k = 0.04`,
    /// `vr = -82.6556`, `vt = -42.3444` (the roots of the quadratic).
    ///
    /// Because this form couples `u` to `v - vr` rather than `v`, the
    /// classic state maps with an offset: `u₉ = u₄ - b·vr` and the input
    /// current maps as `I₉ = I₄ - b·vr`.
    pub fn from_classic(a: f64, b: f64, c: f64, d: f64) -> Self {
        // Roots of 0.04 v^2 + 5 v + 140.
        let disc = (5.0f64 * 5.0 - 4.0 * 0.04 * 140.0).sqrt();
        let vr = (-5.0 - disc) / (2.0 * 0.04);
        let vt = (-5.0 + disc) / (2.0 * 0.04);
        Izh9Params {
            cap: 1.0,
            k: 0.04,
            vr,
            vt,
            v_peak: 30.0,
            a,
            b,
            c,
            d,
        }
    }
}

/// A 9-parameter neuron with forward-Euler integration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Izh9Neuron {
    /// Parameters.
    pub params: Izh9Params,
    /// Membrane potential (mV).
    pub v: f64,
    /// Recovery variable.
    pub u: f64,
}

impl Izh9Neuron {
    /// Initialise at rest (`v = vr`, `u = 0`).
    pub fn new(params: Izh9Params) -> Self {
        Izh9Neuron {
            params,
            v: params.vr,
            u: 0.0,
        }
    }

    /// One Euler step of `h` ms with input current `i`; returns `true` on
    /// a spike (threshold test before integration, as in the NPU).
    pub fn step(&mut self, h: f64, i: f64) -> bool {
        let p = self.params;
        let spike = self.v >= p.v_peak;
        if spike {
            self.v = p.c;
            self.u += p.d;
        }
        let dv = (p.k * (self.v - p.vr) * (self.v - p.vt) - self.u + i) / p.cap;
        let du = p.a * (p.b * (self.v - p.vr) - self.u);
        self.v += h * dv;
        self.u += h * du;
        spike
    }

    /// Spike count over `ms` milliseconds of constant drive (h = 0.5 ms).
    pub fn rate_under(&mut self, i: f64, ms: u32) -> u32 {
        (0..2 * ms).map(|_| self.step(0.5, i) as u32).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceNeuron;

    #[test]
    fn rs9_rests_without_input() {
        let mut n = Izh9Neuron::new(Izh9Params::regular_spiking());
        assert_eq!(n.rate_under(0.0, 2000), 0);
        assert!((n.v - n.params.vr).abs() < 2.0, "v = {}", n.v);
    }

    #[test]
    fn rs9_fires_with_sufficient_current() {
        // 2007 book: RS cell needs ~60-100 pA to fire.
        let mut n = Izh9Neuron::new(Izh9Params::regular_spiking());
        let spikes = n.rate_under(150.0, 1000);
        assert!((2..=60).contains(&spikes), "spikes = {spikes}");
    }

    #[test]
    fn rate_increases_with_current() {
        let rate = |i: f64| Izh9Neuron::new(Izh9Params::regular_spiking()).rate_under(i, 1000);
        assert!(rate(100.0) < rate(300.0));
        assert!(rate(300.0) < rate(700.0));
    }

    #[test]
    fn fs9_is_faster_than_rs9() {
        let fs = Izh9Neuron::new(Izh9Params::fast_spiking()).rate_under(200.0, 1000);
        let rs = Izh9Neuron::new(Izh9Params::regular_spiking()).rate_under(200.0, 1000);
        assert!(fs > rs, "fs {fs} vs rs {rs}");
    }

    #[test]
    fn from_classic_matches_4_parameter_model() {
        // The embedding must reproduce the classic dynamics closely.
        let p9 = Izh9Params::from_classic(0.02, 0.2, -65.0, 8.0);
        let offset = 0.2 * p9.vr; // b * vr: the u/I embedding offset
        let mut nine = Izh9Neuron::new(p9);
        nine.v = -65.0;
        nine.u = -13.0 - offset;
        let mut four =
            ReferenceNeuron::with_state(crate::params::IzhParams::regular_spiking(), -65.0, -13.0);
        let mut s9 = 0u32;
        let mut s4 = 0u32;
        for _ in 0..4000 {
            s9 += nine.step(0.5, 10.0 - offset) as u32;
            s4 += four.step(0.5, 10.0) as u32;
        }
        // The post-spike reset `u += d` lands at a slightly different
        // phase, so compare rates rather than exact trajectories.
        assert!(s9 > 0 && s4 > 0, "9-param {s9} vs 4-param {s4}");
        let (lo, hi) = if s9 < s4 { (s9, s4) } else { (s4, s9) };
        assert!(hi as f64 / lo as f64 <= 1.5, "9-param {s9} vs 4-param {s4}");
    }

    #[test]
    fn burster_bursts() {
        // IB cells produce an initial high-frequency burst: the first few
        // ISIs are much shorter than the later ones.
        let mut n = Izh9Neuron::new(Izh9Params::intrinsically_bursting());
        let mut times = Vec::new();
        for t in 0..8000u32 {
            if n.step(0.5, 500.0) {
                times.push(t);
            }
        }
        assert!(times.len() >= 4, "only {} spikes", times.len());
        let first_isi = times[1] - times[0];
        let last_isi = times[times.len() - 1] - times[times.len() - 2];
        assert!(
            last_isi > first_isi * 2,
            "no burst adaptation: first {first_isi}, last {last_isi}"
        );
    }
}

//! Double-precision reference implementation of the Izhikevich neuron and
//! AMPA current decay.
//!
//! This is the "MATLAB double precision" arm of the paper's Fig. 3
//! comparison: the same reset-then-integrate Euler scheme as the NPU, but
//! with exact `f64` arithmetic and the exact constants (0.04, 1/τ).

use crate::params::IzhParams;

/// A double-precision Izhikevich neuron with its synaptic current.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReferenceNeuron {
    /// Model parameters.
    pub params: IzhParams,
    /// Membrane potential (mV).
    pub v: f64,
    /// Recovery variable.
    pub u: f64,
}

impl ReferenceNeuron {
    /// Create a neuron at `v = c`, `u = b*v` (the conventional init used by
    /// Izhikevich's published network script).
    pub fn new(params: IzhParams) -> Self {
        let v = params.c;
        ReferenceNeuron {
            params,
            v,
            u: params.b * v,
        }
    }

    /// Create with explicit initial state.
    pub fn with_state(params: IzhParams, v: f64, u: f64) -> Self {
        ReferenceNeuron { params, v, u }
    }

    /// One Euler step of size `h` (ms) with input current `isyn`.
    /// Returns `true` if the neuron fired (threshold test before update,
    /// mirroring the NPU and the MATLAB reference).
    pub fn step(&mut self, h: f64, isyn: f64) -> bool {
        let p = self.params;
        let spike = self.v >= 30.0;
        if spike {
            self.v = p.c;
            self.u += p.d;
        }
        let dv = 0.04 * self.v * self.v + 5.0 * self.v + 140.0 - self.u + isyn;
        let du = p.a * (p.b * self.v - self.u);
        self.v += h * dv;
        self.u += h * du;
        spike
    }

    /// Izhikevich's original 1 ms scheme: two 0.5 ms v-updates and one full
    /// 1 ms u-update (the discretisation used in the 2003 paper's script).
    pub fn step_1ms_matlab(&mut self, isyn: f64) -> bool {
        let p = self.params;
        let spike = self.v >= 30.0;
        if spike {
            self.v = p.c;
            self.u += p.d;
        }
        for _ in 0..2 {
            let dv = 0.04 * self.v * self.v + 5.0 * self.v + 140.0 - self.u + isyn;
            self.v += 0.5 * dv;
        }
        self.u += p.a * (p.b * self.v - self.u);
        spike
    }
}

/// Exact exponential-Euler AMPA decay: `isyn * (1 - h/τ)`.
#[inline]
pub fn decay_exact(isyn: f64, tau: f64, h: f64) -> f64 {
    isyn - isyn / tau * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rs_neuron_fires_tonically_at_i10() {
        let mut n = ReferenceNeuron::new(IzhParams::regular_spiking());
        let mut spikes = 0;
        for _ in 0..2000 {
            spikes += n.step(0.5, 10.0) as u32;
        }
        assert!((2..=100).contains(&spikes), "spikes = {spikes}");
    }

    #[test]
    fn chattering_bursts() {
        // CH neurons emit bursts: inter-spike intervals are bimodal, so the
        // spike count is substantially higher than RS at the same input.
        let run = |p: IzhParams| {
            let mut n = ReferenceNeuron::new(p);
            (0..4000).map(|_| n.step(0.5, 10.0) as u32).sum::<u32>()
        };
        let rs = run(IzhParams::regular_spiking());
        let ch = run(IzhParams::chattering());
        assert!(ch > rs, "ch = {ch}, rs = {rs}");
    }

    #[test]
    fn fs_fires_faster_than_rs() {
        let run = |p: IzhParams| {
            let mut n = ReferenceNeuron::new(p);
            (0..4000).map(|_| n.step(0.5, 10.0) as u32).sum::<u32>()
        };
        assert!(run(IzhParams::fast_spiking()) > run(IzhParams::regular_spiking()));
    }

    #[test]
    fn no_input_no_spikes() {
        let mut n = ReferenceNeuron::new(IzhParams::regular_spiking());
        let spikes: u32 = (0..4000).map(|_| n.step(0.5, 0.0) as u32).sum();
        assert_eq!(spikes, 0);
        assert!(n.v < -50.0);
    }

    #[test]
    fn matlab_scheme_close_to_half_steps() {
        let mut a = ReferenceNeuron::new(IzhParams::regular_spiking());
        let mut b = a;
        let mut sa = 0u32;
        let mut sb = 0u32;
        for _ in 0..1000 {
            sa += a.step_1ms_matlab(6.0) as u32;
            sb += b.step(0.5, 6.0) as u32;
            sb += b.step(0.5, 6.0) as u32;
        }
        // Firing rates agree within a factor ~1.5 between discretisations.
        let (lo, hi) = if sa < sb { (sa, sb) } else { (sb, sa) };
        assert!(lo > 0, "no spikes at all");
        assert!(hi as f64 / lo as f64 <= 2.0, "{sa} vs {sb}");
    }

    #[test]
    fn decay_reaches_e_fold_after_tau() {
        // After τ ms of decay with step h, the current should be near 1/e.
        let tau = 5.0;
        let h = 0.5;
        let mut i = 1.0;
        let steps = (tau / h) as u32;
        for _ in 0..steps {
            i = decay_exact(i, tau, h);
        }
        let e_inv = (-1.0_f64).exp();
        assert!((i - e_inv).abs() < 0.05, "i = {i}, 1/e = {e_inv}");
    }
}

//! NM_REGS — the neuromorphic configuration register block.
//!
//! Figure 1 of the paper shows a small register file ("NM REGS") feeding the
//! NPU and DCU. It is loaded by the two configuration instructions:
//!
//! * `nmldl rd, rs1, rs2` — loads the Izhikevich parameters:
//!   rs1 = {b\[31:16\] (Q4.11), a\[15:0\] (Q4.11)},
//!   rs2 = {d\[31:16\] (Q4.11), c\[15:0\] (Q7.8)}; rd receives 1 ("OK").
//! * `nmldh rd, rs1, rs2` — rs1 bit 0 selects the hardware timestep
//!   (`0` → 0.5 ms, `1` → 0.125 ms), bit 1 sets the `pin` flag that clamps
//!   the membrane voltage at the reset potential; rd receives 1.

use crate::params::FixedIzhParams;

/// Hardware integration timestep selected by `nmldh`.
///
/// Both values are negative powers of two so the NPU multiplies by `h` with
/// an arithmetic shift instead of a divider (§V-B of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HStep {
    /// 0.5 ms: multiply-by-h is a right shift by 1.
    #[default]
    Half,
    /// 0.125 ms: multiply-by-h is a right shift by 3.
    Eighth,
}

impl HStep {
    /// The right-shift amount implementing multiplication by `h`.
    #[inline]
    pub const fn shift(self) -> u32 {
        match self {
            HStep::Half => 1,
            HStep::Eighth => 3,
        }
    }

    /// Timestep in milliseconds.
    #[inline]
    pub const fn millis(self) -> f64 {
        match self {
            HStep::Half => 0.5,
            HStep::Eighth => 0.125,
        }
    }

    /// Decode from the `h` bit of the `nmldh` rs1 operand.
    #[inline]
    pub const fn from_bit(bit: bool) -> Self {
        if bit {
            HStep::Eighth
        } else {
            HStep::Half
        }
    }

    /// Encode to the `h` bit of the `nmldh` rs1 operand.
    #[inline]
    pub const fn to_bit(self) -> bool {
        matches!(self, HStep::Eighth)
    }
}

/// The NM_REGS configuration block shared by the NPU and DCU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NmRegs {
    /// Quantised Izhikevich parameters (loaded by `nmldl`).
    pub params: FixedIzhParams,
    /// Hardware timestep (loaded by `nmldh`, bit 0).
    pub h: HStep,
    /// Pin-voltage flag (loaded by `nmldh`, bit 1): when set, the NPU clamps
    /// `v` at the reset potential `c` from below, suppressing the model's
    /// rebound property (§V-B; needed for Sudoku convergence).
    pub pin: bool,
}

impl NmRegs {
    /// Execute the `nmldl` semantics: latch parameters, return the OK flag.
    pub fn exec_nmldl(&mut self, rs1: u32, rs2: u32) -> u32 {
        self.params = FixedIzhParams::unpack(rs1, rs2);
        1
    }

    /// Execute the `nmldh` semantics: latch h/pin bits, return the OK flag.
    pub fn exec_nmldh(&mut self, rs1: u32) -> u32 {
        self.h = HStep::from_bit(rs1 & 0b01 != 0);
        self.pin = rs1 & 0b10 != 0;
        1
    }

    /// Host-side convenience: load double-precision parameters, quantising.
    pub fn load_params(&mut self, p: &crate::params::IzhParams) {
        self.params = p.quantize();
    }

    /// Host-side convenience: set the timestep directly.
    pub fn set_h(&mut self, h: HStep) {
        self.h = h;
    }

    /// Host-side convenience: set the pin flag directly.
    pub fn set_pin(&mut self, pin: bool) {
        self.pin = pin;
    }

    /// Encode the rs1 operand for `nmldh` reproducing this configuration.
    pub fn encode_nmldh_rs1(&self) -> u32 {
        (self.h.to_bit() as u32) | ((self.pin as u32) << 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::IzhParams;

    #[test]
    fn hstep_shift_values() {
        assert_eq!(HStep::Half.shift(), 1);
        assert_eq!(HStep::Eighth.shift(), 3);
        assert_eq!(HStep::Half.millis(), 0.5);
        assert_eq!(HStep::Eighth.millis(), 0.125);
    }

    #[test]
    fn hstep_bit_roundtrip() {
        for h in [HStep::Half, HStep::Eighth] {
            assert_eq!(HStep::from_bit(h.to_bit()), h);
        }
    }

    #[test]
    fn nmldl_latches_parameters() {
        let mut regs = NmRegs::default();
        let q = IzhParams::regular_spiking().quantize();
        let (rs1, rs2) = q.pack();
        let ok = regs.exec_nmldl(rs1, rs2);
        assert_eq!(ok, 1);
        assert_eq!(regs.params, q);
    }

    #[test]
    fn nmldh_latches_h_and_pin() {
        let mut regs = NmRegs::default();
        assert_eq!(regs.exec_nmldh(0b11), 1);
        assert_eq!(regs.h, HStep::Eighth);
        assert!(regs.pin);
        regs.exec_nmldh(0b00);
        assert_eq!(regs.h, HStep::Half);
        assert!(!regs.pin);
        // Reserved bits are ignored.
        regs.exec_nmldh(0xFFFF_FF00);
        assert_eq!(regs.h, HStep::Half);
        assert!(!regs.pin);
    }

    #[test]
    fn nmldh_rs1_encode_roundtrip() {
        let mut a = NmRegs::default();
        a.set_h(HStep::Eighth);
        a.set_pin(true);
        let mut b = NmRegs::default();
        b.exec_nmldh(a.encode_nmldh_rs1());
        assert_eq!(a.h, b.h);
        assert_eq!(a.pin, b.pin);
    }
}

//! Izhikevich model parameters and the canonical firing-pattern presets.
//!
//! The 4-parameter model (Izhikevich 2003, Eq. 1–2 of the paper):
//!
//! ```text
//! dv/dt = 0.04 v^2 + 5 v + 140 - u + I
//! du/dt = a (b v - u)
//! if v >= 30 mV: v <- c, u <- u + d
//! ```
//!
//! `a` is the recovery time scale, `b` the sensitivity of `u` to `v`, `c`
//! the post-spike reset voltage and `d` the post-spike recovery increment.

use izhi_fixed::{Q4_11, Q7_8};

/// Double-precision Izhikevich parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IzhParams {
    /// Recovery variable time scale (typ. 0.02).
    pub a: f64,
    /// Recovery sensitivity to subthreshold v (typ. 0.2).
    pub b: f64,
    /// Post-spike reset voltage in mV (typ. -65).
    pub c: f64,
    /// Post-spike recovery increment (typ. 8 for RS).
    pub d: f64,
}

impl IzhParams {
    /// Create from explicit values.
    pub const fn new(a: f64, b: f64, c: f64, d: f64) -> Self {
        IzhParams { a, b, c, d }
    }

    /// Regular spiking (RS) cortical excitatory neuron.
    pub const fn regular_spiking() -> Self {
        IzhParams::new(0.02, 0.2, -65.0, 8.0)
    }

    /// Intrinsically bursting (IB) neuron.
    pub const fn intrinsically_bursting() -> Self {
        IzhParams::new(0.02, 0.2, -55.0, 4.0)
    }

    /// Chattering (CH) neuron.
    pub const fn chattering() -> Self {
        IzhParams::new(0.02, 0.2, -50.0, 2.0)
    }

    /// Fast spiking (FS) inhibitory interneuron.
    pub const fn fast_spiking() -> Self {
        IzhParams::new(0.1, 0.2, -65.0, 2.0)
    }

    /// Low-threshold spiking (LTS) inhibitory neuron.
    pub const fn low_threshold_spiking() -> Self {
        IzhParams::new(0.02, 0.25, -65.0, 2.0)
    }

    /// Thalamo-cortical (TC) neuron.
    pub const fn thalamo_cortical() -> Self {
        IzhParams::new(0.02, 0.25, -65.0, 0.05)
    }

    /// Resonator (RZ) neuron.
    pub const fn resonator() -> Self {
        IzhParams::new(0.1, 0.26, -65.0, 2.0)
    }

    /// Izhikevich-2003 80-20 network *excitatory* cell: parameters are
    /// blended towards chattering by a random factor `r ∈ [0,1]`:
    /// `c = -65 + 15 r^2`, `d = 8 - 6 r^2`.
    pub fn excitatory_8020(r: f64) -> Self {
        IzhParams::new(0.02, 0.2, -65.0 + 15.0 * r * r, 8.0 - 6.0 * r * r)
    }

    /// Izhikevich-2003 80-20 network *inhibitory* cell:
    /// `a = 0.02 + 0.08 r`, `b = 0.25 - 0.05 r`.
    pub fn inhibitory_8020(r: f64) -> Self {
        IzhParams::new(0.02 + 0.08 * r, 0.25 - 0.05 * r, -65.0, 2.0)
    }

    /// Quantise to the hardware parameter formats (Table I).
    pub fn quantize(&self) -> FixedIzhParams {
        FixedIzhParams {
            a: Q4_11::from_f64(self.a),
            b: Q4_11::from_f64(self.b),
            c: Q7_8::from_f64(self.c),
            d: Q4_11::from_f64(self.d),
        }
    }

    /// The steady-state (resting) point of the subthreshold dynamics for a
    /// given constant input current, obtained from `dv/dt = du/dt = 0`.
    /// Returns `None` if the quadratic has no real root (the neuron fires
    /// indefinitely for this input).
    pub fn resting_state(&self, i_syn: f64) -> Option<(f64, f64)> {
        // 0.04 v^2 + 5v + 140 - u + I = 0 with u = b v.
        let a2 = 0.04;
        let b1 = 5.0 - self.b;
        let c0 = 140.0 + i_syn;
        let disc = b1 * b1 - 4.0 * a2 * c0;
        if disc < 0.0 {
            return None;
        }
        // The lower root is the stable equilibrium.
        let v = (-b1 - disc.sqrt()) / (2.0 * a2);
        Some((v, self.b * v))
    }
}

impl Default for IzhParams {
    fn default() -> Self {
        IzhParams::regular_spiking()
    }
}

/// Parameters quantised to the exact register formats the hardware loads
/// via `nmldl` (a, b, d in Q4.11; c in Q7.8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FixedIzhParams {
    /// Q4.11 recovery time scale.
    pub a: Q4_11,
    /// Q4.11 recovery sensitivity.
    pub b: Q4_11,
    /// Q7.8 reset voltage.
    pub c: Q7_8,
    /// Q4.11 recovery increment.
    pub d: Q4_11,
}

impl FixedIzhParams {
    /// Pack into the `(rs1, rs2)` operands of `nmldl`
    /// (rs1 = {b\[31:16\], a\[15:0\]}, rs2 = {d\[31:16\], c\[15:0\]}).
    pub fn pack(&self) -> (u32, u32) {
        let rs1 = ((self.b.raw() as u16 as u32) << 16) | (self.a.raw() as u16 as u32);
        let rs2 = ((self.d.raw() as u16 as u32) << 16) | (self.c.raw() as u16 as u32);
        (rs1, rs2)
    }

    /// Unpack from the `(rs1, rs2)` operands of `nmldl`.
    pub fn unpack(rs1: u32, rs2: u32) -> Self {
        FixedIzhParams {
            a: Q4_11::from_raw(rs1 as u16 as i16),
            b: Q4_11::from_raw((rs1 >> 16) as u16 as i16),
            c: Q7_8::from_raw(rs2 as u16 as i16),
            d: Q4_11::from_raw((rs2 >> 16) as u16 as i16),
        }
    }

    /// Back-convert to f64 (the values the hardware actually computes with).
    pub fn dequantize(&self) -> IzhParams {
        IzhParams {
            a: self.a.to_f64(),
            b: self.b.to_f64(),
            c: self.c.to_f64(),
            d: self.d.to_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_distinct() {
        let presets = [
            IzhParams::regular_spiking(),
            IzhParams::intrinsically_bursting(),
            IzhParams::chattering(),
            IzhParams::fast_spiking(),
            IzhParams::low_threshold_spiking(),
            IzhParams::thalamo_cortical(),
            IzhParams::resonator(),
        ];
        for (i, p) in presets.iter().enumerate() {
            for q in presets.iter().skip(i + 1) {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn blend_endpoints() {
        // r = 0 gives RS, r = 1 gives CH for the excitatory blend.
        assert_eq!(
            IzhParams::excitatory_8020(0.0),
            IzhParams::regular_spiking()
        );
        assert_eq!(IzhParams::excitatory_8020(1.0), IzhParams::chattering());
        // r = 0 gives LTS, r = 1 gives FS-like for the inhibitory blend.
        assert_eq!(
            IzhParams::inhibitory_8020(0.0),
            IzhParams::low_threshold_spiking()
        );
        let fs_like = IzhParams::inhibitory_8020(1.0);
        assert!((fs_like.a - 0.1).abs() < 1e-12);
        assert!((fs_like.b - 0.2).abs() < 1e-12);
    }

    #[test]
    fn quantize_roundtrip_error() {
        let p = IzhParams::regular_spiking();
        let q = p.quantize().dequantize();
        assert!((q.a - p.a).abs() < 1.0 / 2048.0);
        assert!((q.b - p.b).abs() < 1.0 / 2048.0);
        assert!((q.c - p.c).abs() < 1.0 / 256.0);
        assert!((q.d - p.d).abs() < 1.0 / 2048.0);
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let q = IzhParams::fast_spiking().quantize();
        let (rs1, rs2) = q.pack();
        assert_eq!(FixedIzhParams::unpack(rs1, rs2), q);
    }

    #[test]
    fn resting_state_is_equilibrium() {
        let p = IzhParams::regular_spiking();
        let (v, u) = p.resting_state(0.0).unwrap();
        let dv = 0.04 * v * v + 5.0 * v + 140.0 - u;
        let du = p.a * (p.b * v - u);
        assert!(dv.abs() < 1e-9, "dv = {dv}");
        assert!(du.abs() < 1e-9, "du = {du}");
        // RS rest potential is around -70 mV.
        assert!((-71.0..=-69.0).contains(&v), "v = {v}");
    }

    #[test]
    fn resting_state_vanishes_for_large_input() {
        // With enough current the parabola has no real root: tonic firing.
        assert!(IzhParams::regular_spiking().resting_state(200.0).is_none());
    }
}

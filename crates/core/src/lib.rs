//! # izhi-core — the IzhiRISC-V neuromorphic functional units
//!
//! This crate implements the paper's primary contribution at the functional
//! level: the semantics of the four custom-0 instructions (`nmldl`, `nmldh`,
//! `nmpn`, `nmdec`) and the two hardware units behind them:
//!
//! * **NPU** (Neuron Processing Unit): a single-cycle forward-Euler update
//!   of the 4-parameter Izhikevich model in signed fixed point
//!   ([`npu::NpUnit`]). The arithmetic follows the VHDL design: Q7.8 state,
//!   Q4.11 parameters, Q15.16 synaptic current, a variable-width internal
//!   accumulator, and a final round-saturate resize back to Q7.8.
//! * **DCU** (Decay Unit): AMPA-like exponential decay of the synaptic
//!   current approximated with a bit-shift division array ([`dcu::Dcu`]).
//!
//! Both units read their static configuration (Izhikevich `a,b,c,d`, the
//! hardware timestep `h ∈ {0.5 ms, 0.125 ms}`, and the `pin` clamp bit) from
//! the NM_REGS block ([`nmregs::NmRegs`]), loaded by the configuration
//! instructions.
//!
//! The same functions are used by the instruction-set simulator (`izhi-sim`)
//! to execute guest `nmpn`/`nmdec` instructions and by the host-side SNN
//! library (`izhi-snn`) for its fixed-point software simulator, so the
//! "fixed-point MATLAB" and "IzhiRISC-V" traces of the paper's Fig. 3 are
//! bit-identical by construction where the paper only shows them to be
//! statistically similar.
//!
//! A double-precision reference implementation ([`reference`](mod@reference)) reproduces
//! the "MATLAB double" arm of the comparison.
//!
//! ## Quick example
//!
//! ```
//! use izhi_core::nmregs::{HStep, NmRegs};
//! use izhi_core::npu::NpUnit;
//! use izhi_core::params::IzhParams;
//! use izhi_fixed::qformat::pack_vu;
//! use izhi_fixed::{Q15_16, Q7_8};
//!
//! // Regular-spiking neuron, 0.5 ms hardware step, no pin clamp.
//! let mut regs = NmRegs::default();
//! regs.load_params(&IzhParams::regular_spiking());
//! regs.set_h(HStep::Half);
//!
//! let mut vu = pack_vu(Q7_8::from_f64(-65.0), Q7_8::from_f64(-13.0));
//! let input = Q15_16::from_f64(10.0);
//! for _ in 0..2000 {
//!     let out = NpUnit::update(&regs, vu, input);
//!     vu = out.vu;
//!     if out.spike {
//!         // the neuron fired this timestep
//!     }
//! }
//! ```

pub mod dcu;
pub mod izh9;
pub mod nmregs;
pub mod npu;
pub mod params;
pub mod reference;

pub use dcu::Dcu;
pub use nmregs::{HStep, NmRegs};
pub use npu::{NpUnit, NpuOutput};
pub use params::IzhParams;
pub use reference::ReferenceNeuron;

/// Firing threshold of the Izhikevich model in millivolts (30 mV).
pub const V_THRESHOLD_MV: f64 = 30.0;

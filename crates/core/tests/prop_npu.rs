//! Property-based tests for the NPU/DCU datapaths.

use izhi_core::dcu::Dcu;
use izhi_core::nmregs::{HStep, NmRegs};
use izhi_core::npu::NpUnit;
use izhi_core::params::{FixedIzhParams, IzhParams};
use izhi_fixed::qformat::{pack_vu, unpack_vu};
use izhi_fixed::{Q15_16, Q4_11, Q7_8};
use proptest::prelude::*;

fn arb_regs() -> impl Strategy<Value = NmRegs> {
    (
        0.001f64..0.3,
        0.1f64..0.3,
        -70.0f64..-45.0,
        0.05f64..8.0,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(a, b, c, d, h8, pin)| {
            let mut regs = NmRegs::default();
            regs.load_params(&IzhParams::new(a, b, c, d));
            regs.set_h(if h8 { HStep::Eighth } else { HStep::Half });
            regs.set_pin(pin);
            regs
        })
}

proptest! {
    /// The NPU never panics and always produces a valid packed VU word for
    /// arbitrary bit patterns (hardware cannot crash on garbage input).
    #[test]
    fn npu_total_on_arbitrary_bits(
        regs in arb_regs(),
        vu in any::<u32>(),
        isyn in any::<i32>(),
    ) {
        let out = NpUnit::update(&regs, vu, Q15_16::from_raw(isyn));
        let (v, u) = unpack_vu(out.vu);
        // Re-packing is the identity (no information invented).
        prop_assert_eq!(pack_vu(v, u), out.vu);
    }

    /// Single-step output tracks the exact-arithmetic model within a small
    /// number of output LSBs whenever the exact result is in range.
    #[test]
    fn npu_tracks_exact_model(
        regs in arb_regs(),
        v in -80.0f64..29.0,
        u in -20.0f64..20.0,
        isyn in -50.0f64..50.0,
    ) {
        let vq = Q7_8::from_f64(v);
        let uq = Q7_8::from_f64(u);
        let iq = Q15_16::from_f64(isyn);
        let (v2, u2, s2) = NpUnit::update_parts(&regs, vq, uq, iq);
        let (ve, ue, se) =
            NpUnit::update_parts_exact(&regs, vq.to_f64(), uq.to_f64(), iq.to_f64());
        prop_assert_eq!(s2, se);
        if ve.abs() < 127.0 {
            prop_assert!((v2.to_f64() - ve).abs() < 4.0 / 256.0,
                "v: {} vs {}", v2.to_f64(), ve);
        }
        if ue.abs() < 127.0 {
            prop_assert!((u2.to_f64() - ue).abs() < 4.0 / 256.0,
                "u: {} vs {}", u2.to_f64(), ue);
        }
    }

    /// Spiking is exactly the threshold predicate on the incoming v.
    #[test]
    fn spike_iff_threshold(regs in arb_regs(), v in any::<i16>(), u in any::<i16>()) {
        let (_, _, spike) =
            NpUnit::update_parts(&regs, Q7_8::from_raw(v), Q7_8::from_raw(u), Q15_16::ZERO);
        prop_assert_eq!(spike, v >= 30 << 8);
    }

    /// With pin set, the output voltage never falls below the reset value.
    #[test]
    fn pin_invariant(
        mut regs in arb_regs(),
        vu in any::<u32>(),
        isyn in any::<i32>(),
    ) {
        regs.set_pin(true);
        let out = NpUnit::update(&regs, vu, Q15_16::from_raw(isyn));
        let (v, _) = unpack_vu(out.vu);
        prop_assert!(v >= regs.params.c);
    }

    /// nmldl pack/unpack round-trips arbitrary parameter bit patterns.
    #[test]
    fn nmldl_roundtrip(a in any::<i16>(), b in any::<i16>(), c in any::<i16>(), d in any::<i16>()) {
        let p = FixedIzhParams {
            a: Q4_11::from_raw(a),
            b: Q4_11::from_raw(b),
            c: Q7_8::from_raw(c),
            d: Q4_11::from_raw(d),
        };
        let (rs1, rs2) = p.pack();
        let mut regs = NmRegs::default();
        regs.exec_nmldl(rs1, rs2);
        prop_assert_eq!(regs.params, p);
    }

    /// DCU decay is a contraction: |out| <= |in| for every divisor/step.
    #[test]
    fn dcu_contraction(
        isyn in -2_000_000_000i32..2_000_000_000,
        tau in 1u32..=9,
        h8 in any::<bool>(),
    ) {
        let mut regs = NmRegs::default();
        regs.set_h(if h8 { HStep::Eighth } else { HStep::Half });
        let x = Q15_16::from_raw(isyn);
        let y = Dcu::decay(&regs, x, tau);
        prop_assert!((y.raw() as i64).abs() <= (x.raw() as i64).abs() + 1,
            "{} -> {}", x.raw(), y.raw());
    }

    /// The shift approximation sits within 0.5 % of true division.
    #[test]
    fn dcu_approx_relative_error(x in -1_000_000i32..1_000_000, tau in 1u32..=9) {
        prop_assume!(x.abs() > 10_000); // avoid quantisation-dominated cases
        let q = Dcu::approx_div(Q15_16::from_raw(x), tau);
        let exact = x as f64 / tau as f64;
        let rel = (q.raw() as f64 - exact).abs() / exact.abs();
        // 0.5 % model error plus shift-truncation (bounded by #terms LSBs).
        prop_assert!(rel < 0.006, "x={x} tau={tau} rel={rel}");
    }

    /// Repeated decay always converges towards zero.
    #[test]
    fn dcu_converges(x0 in -30000.0f64..30000.0, tau in 2u32..=9) {
        let mut regs = NmRegs::default();
        regs.set_h(HStep::Half);
        let mut x = Q15_16::from_f64(x0);
        for _ in 0..2000 {
            x = Dcu::decay(&regs, x, tau);
        }
        prop_assert!(x.to_f64().abs() < 1.0, "residual {}", x.to_f64());
    }
}

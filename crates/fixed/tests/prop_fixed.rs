//! Property-based tests for the fixed-point layer.

use izhi_fixed::qformat::{pack_vu, unpack_vu};
use izhi_fixed::{ResizeMode, Wide, Q15_16, Q4_11, Q7_8};
use proptest::prelude::*;

proptest! {
    /// f64 -> Q -> f64 round trip lands within half an LSB for in-range values.
    #[test]
    fn q7_8_roundtrip_error_bounded(x in -127.9f64..127.9) {
        let q = Q7_8::from_f64(x);
        prop_assert!((q.to_f64() - x).abs() <= 0.5 / 256.0 + 1e-12);
    }

    #[test]
    fn q4_11_roundtrip_error_bounded(x in -15.9f64..15.9) {
        let q = Q4_11::from_f64(x);
        prop_assert!((q.to_f64() - x).abs() <= 0.5 / 2048.0 + 1e-12);
    }

    #[test]
    fn q15_16_roundtrip_error_bounded(x in -32000.0f64..32000.0) {
        let q = Q15_16::from_f64(x);
        prop_assert!((q.to_f64() - x).abs() <= 0.5 / 65536.0 + 1e-9);
    }

    /// Saturating conversion is monotone.
    #[test]
    fn from_f64_monotone(a in -200.0f64..200.0, b in -200.0f64..200.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Q7_8::from_f64(lo) <= Q7_8::from_f64(hi));
    }

    /// VU pack/unpack is a bijection on raw bit patterns.
    #[test]
    fn vu_roundtrip(v in any::<i16>(), u in any::<i16>()) {
        let (v2, u2) = unpack_vu(pack_vu(Q7_8(v), Q7_8(u)));
        prop_assert_eq!(v2.raw(), v);
        prop_assert_eq!(u2.raw(), u);
    }

    /// Wide addition agrees with f64 for moderate magnitudes.
    #[test]
    fn wide_add_matches_f64(
        a in -1000.0f64..1000.0,
        b in -1000.0f64..1000.0,
        fa in 4u32..20,
        fb in 4u32..20,
    ) {
        let wa = Wide::from_f64(a, fa);
        let wb = Wide::from_f64(b, fb);
        let s = wa.add(wb);
        prop_assert!((s.to_f64() - (wa.to_f64() + wb.to_f64())).abs() < 1e-9);
    }

    /// Wide multiplication is exact on the mantissas.
    #[test]
    fn wide_mul_exact(
        a in -30000i64..30000,
        b in -30000i64..30000,
        fa in 0u32..16,
        fb in 0u32..16,
    ) {
        let wa = Wide::new(a, fa);
        let wb = Wide::new(b, fb);
        let p = wa.mul(wb);
        prop_assert_eq!(p.raw(), a * b);
        prop_assert_eq!(p.frac(), fa + fb);
    }

    /// Round-saturate resize never differs from the ideal real value by more
    /// than half an output LSB unless it saturated.
    #[test]
    fn resize_round_error_bounded(raw in -(1i64 << 40)..(1i64 << 40), frac in 16u32..30) {
        let w = Wide::new(raw, frac);
        let q = w.to_q7_8(ResizeMode::RoundSaturate);
        let ideal = w.to_f64();
        if ideal < 127.99 && ideal > -128.0 {
            prop_assert!((q.to_f64() - ideal).abs() <= 0.5 / 256.0 + 1e-12);
        } else {
            prop_assert!(q == Q7_8::MAX || q == Q7_8::MIN);
        }
    }

    /// Truncating resize never exceeds the true value (floor semantics).
    #[test]
    fn resize_truncate_floors(raw in -(1i64 << 30)..(1i64 << 30), frac in 16u32..24) {
        let w = Wide::new(raw, frac);
        let q = w.to_q15_16(ResizeMode::TruncateSaturate);
        prop_assert!(q.to_f64() <= w.to_f64() + 1e-12);
        prop_assert!(w.to_f64() - q.to_f64() < 1.0 / 65536.0 + 1e-12);
    }

    /// Narrowing Q15.16 -> Q7.8 (rounded) matches the Wide-based resize.
    #[test]
    fn narrow_matches_wide(raw in any::<i32>()) {
        let x = Q15_16(raw);
        let via_wide = x.widen().to_q7_8(ResizeMode::RoundSaturate);
        prop_assert_eq!(x.to_q7_8_rounded(), via_wide);
    }

    /// Saturating add equals clamped integer add.
    #[test]
    fn saturating_add_model(a in any::<i16>(), b in any::<i16>()) {
        let q = Q7_8(a).saturating_add(Q7_8(b));
        let model = (a as i32 + b as i32).clamp(i16::MIN as i32, i16::MAX as i32) as i16;
        prop_assert_eq!(q.raw(), model);
    }
}

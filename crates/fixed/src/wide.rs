//! Variable-width accumulator mirroring the NPU's `sfixed` intermediate
//! arithmetic.
//!
//! The VHDL NPU lets the IEEE `fixed_pkg` grow intermediate results so no
//! product or sum ever overflows, then resizes once at the end. [`Wide`]
//! reproduces that: an `i64` mantissa plus an explicit count of fractional
//! bits. Multiplication adds fractional bit counts; addition aligns to the
//! larger count. A final resize call (`to_q7_8` etc.) converts to a storage format with
//! either round-to-nearest (what the NPU does) or truncation (the defective
//! baseline conversion the paper mentions).

use crate::qformat::{Q15_16, Q4_11, Q7_8};

/// How a [`Wide`] resize disposes of dropped fractional bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResizeMode {
    /// Round to nearest (ties towards +inf on the mantissa) then saturate.
    RoundSaturate,
    /// Truncate (floor on the mantissa) then saturate.
    TruncateSaturate,
    /// Truncate and wrap — keeps only the low bits, as a careless cast does.
    TruncateWrap,
}

/// A fixed-point value with an `i64` mantissa and explicit binary point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wide {
    raw: i64,
    frac: u32,
}

impl Wide {
    /// Create from a raw mantissa and fractional-bit count.
    #[inline]
    pub const fn new(raw: i64, frac: u32) -> Self {
        debug_assert!(frac < 63);
        Wide { raw, frac }
    }

    /// Zero with the given binary point.
    #[inline]
    pub const fn zero(frac: u32) -> Self {
        Wide { raw: 0, frac }
    }

    /// An integer constant (no fractional bits).
    #[inline]
    pub const fn int(value: i64) -> Self {
        Wide {
            raw: value,
            frac: 0,
        }
    }

    /// Construct from `f64` with `frac` fractional bits, round-to-nearest.
    #[inline]
    pub fn from_f64(x: f64, frac: u32) -> Self {
        Wide {
            raw: (x * (1i64 << frac) as f64).round() as i64,
            frac,
        }
    }

    /// Raw mantissa.
    #[inline]
    pub const fn raw(self) -> i64 {
        self.raw
    }

    /// Fractional-bit count.
    #[inline]
    pub const fn frac(self) -> u32 {
        self.frac
    }

    /// Exact value as `f64` (mantissas in the NPU datapath stay well below
    /// 2^53, so this is lossless in practice).
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.raw as f64 / (1i64 << self.frac) as f64
    }

    /// Re-align the binary point to `frac` fractional bits.
    ///
    /// Widening (more fractional bits) is exact; narrowing truncates like an
    /// arithmetic right shift, which matches an `sfixed` resize with
    /// `round_style => fixed_truncate`.
    #[inline]
    pub fn align(self, frac: u32) -> Self {
        if frac >= self.frac {
            Wide {
                raw: self.raw << (frac - self.frac),
                frac,
            }
        } else {
            Wide {
                raw: self.raw >> (self.frac - frac),
                frac,
            }
        }
    }

    /// Addition; the result carries the larger fractional-bit count.
    #[inline]
    pub fn add(self, rhs: Wide) -> Self {
        let frac = self.frac.max(rhs.frac);
        Wide {
            raw: self.align(frac).raw + rhs.align(frac).raw,
            frac,
        }
    }

    /// Subtraction; the result carries the larger fractional-bit count.
    #[inline]
    pub fn sub(self, rhs: Wide) -> Self {
        let frac = self.frac.max(rhs.frac);
        Wide {
            raw: self.align(frac).raw - rhs.align(frac).raw,
            frac,
        }
    }

    /// Full-precision multiplication (fractional bit counts add).
    #[inline]
    pub fn mul(self, rhs: Wide) -> Self {
        Wide {
            raw: self.raw * rhs.raw,
            frac: self.frac + rhs.frac,
        }
    }

    /// Multiply by a small integer constant.
    #[inline]
    pub fn mul_int(self, k: i64) -> Self {
        Wide {
            raw: self.raw * k,
            frac: self.frac,
        }
    }

    /// Arithmetic shift right (divide by 2^n, floor).
    #[inline]
    pub fn shr(self, n: u32) -> Self {
        Wide {
            raw: self.raw >> n,
            frac: self.frac,
        }
    }

    /// Arithmetic shift left (multiply by 2^n).
    #[inline]
    pub fn shl(self, n: u32) -> Self {
        Wide {
            raw: self.raw << n,
            frac: self.frac,
        }
    }

    /// Negate.
    #[inline]
    pub fn neg(self) -> Self {
        Wide {
            raw: -self.raw,
            frac: self.frac,
        }
    }

    /// Resize to a target format described by `(frac_bits, storage_bits)`;
    /// returns the raw mantissa of the target.
    fn resize_raw(self, target_frac: u32, storage_bits: u32, mode: ResizeMode) -> i64 {
        let raw = if target_frac >= self.frac {
            self.raw << (target_frac - self.frac)
        } else {
            let drop = self.frac - target_frac;
            match mode {
                ResizeMode::RoundSaturate => (self.raw + (1i64 << (drop - 1))) >> drop,
                ResizeMode::TruncateSaturate | ResizeMode::TruncateWrap => self.raw >> drop,
            }
        };
        let max = (1i64 << (storage_bits - 1)) - 1;
        let min = -(1i64 << (storage_bits - 1));
        match mode {
            ResizeMode::RoundSaturate | ResizeMode::TruncateSaturate => raw.clamp(min, max),
            ResizeMode::TruncateWrap => {
                // Keep the low `storage_bits` bits, sign-extended.
                let shift = 64 - storage_bits;
                (raw << shift) >> shift
            }
        }
    }

    /// Resize to Q7.8.
    #[inline]
    pub fn to_q7_8(self, mode: ResizeMode) -> Q7_8 {
        Q7_8(self.resize_raw(Q7_8::FRAC, 16, mode) as i16)
    }

    /// Resize to Q4.11.
    #[inline]
    pub fn to_q4_11(self, mode: ResizeMode) -> Q4_11 {
        Q4_11(self.resize_raw(Q4_11::FRAC, 16, mode) as i16)
    }

    /// Resize to Q15.16.
    #[inline]
    pub fn to_q15_16(self, mode: ResizeMode) -> Q15_16 {
        Q15_16(self.resize_raw(Q15_16::FRAC, 32, mode) as i32)
    }
}

impl core::fmt::Display for Wide {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} (raw {} q{})", self.to_f64(), self.raw, self.frac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_widen_exact() {
        let x = Wide::from_f64(1.5, 4);
        let y = x.align(12);
        assert_eq!(y.to_f64(), 1.5);
        assert_eq!(y.frac(), 12);
    }

    #[test]
    fn add_aligns_binary_points() {
        let a = Wide::from_f64(1.25, 8); // Q*.8
        let b = Wide::from_f64(0.5, 16); // Q*.16
        let s = a.add(b);
        assert_eq!(s.frac(), 16);
        assert_eq!(s.to_f64(), 1.75);
    }

    #[test]
    fn mul_adds_fracs() {
        let a = Wide::from_f64(0.04, 20);
        let b = Wide::from_f64(-65.0, 8);
        let p = a.mul(b);
        assert_eq!(p.frac(), 28);
        assert!((p.to_f64() - (-2.6)).abs() < 1e-4);
    }

    #[test]
    fn resize_round_vs_truncate() {
        // 1.5 LSBs above an even mantissa: rounding and truncation differ.
        let x = Wide::new(0b1011, 3); // 1.375
        assert_eq!(x.to_q7_8(ResizeMode::RoundSaturate).to_f64(), 1.375);
        let y = Wide::new(0b10111, 4); // 1.4375 -> Q7.8 exact too (frac grows)
        assert_eq!(y.to_q7_8(ResizeMode::RoundSaturate).to_f64(), 1.4375);
        // Now drop bits: exactly half an output LSB above 0.5 at frac=10.
        let z = Wide::new((1 << 9) + (1 << 1), 10);
        assert_eq!(z.to_q7_8(ResizeMode::TruncateSaturate).to_f64(), 0.5);
        assert_eq!(z.to_q7_8(ResizeMode::RoundSaturate).to_f64(), 0.50390625);
    }

    #[test]
    fn resize_saturates() {
        let big = Wide::from_f64(1000.0, 16);
        assert_eq!(big.to_q7_8(ResizeMode::RoundSaturate), Q7_8::MAX);
        assert_eq!(big.neg().to_q7_8(ResizeMode::RoundSaturate), Q7_8::MIN);
    }

    #[test]
    fn resize_wrap_drops_high_bits() {
        let big = Wide::from_f64(256.25, 16);
        let wrapped = big.to_q7_8(ResizeMode::TruncateWrap);
        assert_eq!(wrapped.to_f64(), 0.25); // 256 wraps away entirely
    }

    #[test]
    fn izhikevich_term_precision() {
        // 0.04 v^2 for v = -65 must come out near 169 with Q7.8 inputs and a
        // high-precision constant.
        let v = Wide::from_f64(-65.0, 8);
        let c004 = Wide::from_f64(0.04, 20);
        let term = c004.mul(v.mul(v));
        assert!((term.to_f64() - 169.0).abs() < 0.01, "{}", term.to_f64());
    }
}

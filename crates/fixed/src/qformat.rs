//! Concrete Q-format storage types.
//!
//! Each type stores its mantissa in the exact integer width the hardware
//! uses: `i16` for the 16-bit formats and `i32` for Q15.16. All arithmetic
//! that can widen goes through [`crate::wide::Wide`]; the operations defined
//! directly on the storage types are the ones the RTL performs in-place
//! (negation, shifts, saturating add).

/// Runtime descriptor of a signed Q-format (`int_bits` integer bits,
/// `frac_bits` fractional bits, plus an implicit sign bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    /// Number of integer bits (excluding the sign bit).
    pub int_bits: u32,
    /// Number of fractional bits.
    pub frac_bits: u32,
}

impl QFormat {
    /// Q4.11: 1 sign + 4 integer + 11 fractional bits (16-bit storage).
    pub const Q4_11: QFormat = QFormat {
        int_bits: 4,
        frac_bits: 11,
    };
    /// Q7.8: 1 sign + 7 integer + 8 fractional bits (16-bit storage).
    pub const Q7_8: QFormat = QFormat {
        int_bits: 7,
        frac_bits: 8,
    };
    /// Q15.16: 1 sign + 15 integer + 16 fractional bits (32-bit storage).
    pub const Q15_16: QFormat = QFormat {
        int_bits: 15,
        frac_bits: 16,
    };

    /// Total storage width in bits including the sign bit.
    #[inline]
    pub const fn width(self) -> u32 {
        1 + self.int_bits + self.frac_bits
    }

    /// The scale factor 2^frac_bits.
    #[inline]
    pub fn scale(self) -> f64 {
        (1i64 << self.frac_bits) as f64
    }

    /// Largest representable value.
    #[inline]
    pub fn max_value(self) -> f64 {
        let max_raw = (1i64 << (self.width() - 1)) - 1;
        max_raw as f64 / self.scale()
    }

    /// Smallest (most negative) representable value.
    #[inline]
    pub fn min_value(self) -> f64 {
        let min_raw = -(1i64 << (self.width() - 1));
        min_raw as f64 / self.scale()
    }

    /// Resolution (value of one LSB).
    #[inline]
    pub fn epsilon(self) -> f64 {
        1.0 / self.scale()
    }
}

impl core::fmt::Display for QFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

macro_rules! q_type {
    (
        $(#[$meta:meta])*
        $name:ident, $raw:ty, $wide_of_raw:ty, $fmt:expr, $frac:expr
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $raw);

        impl $name {
            /// The Q-format descriptor for this type.
            pub const FORMAT: QFormat = $fmt;
            /// Number of fractional bits.
            pub const FRAC: u32 = $frac;
            /// Zero.
            pub const ZERO: $name = $name(0);
            /// One (1.0) in this format.
            pub const ONE: $name = $name(1 << $frac);
            /// Maximum representable value.
            pub const MAX: $name = $name(<$raw>::MAX);
            /// Minimum representable value.
            pub const MIN: $name = $name(<$raw>::MIN);

            /// Construct from the raw mantissa bits.
            #[inline]
            pub const fn from_raw(raw: $raw) -> Self {
                $name(raw)
            }

            /// Raw mantissa bits.
            #[inline]
            pub const fn raw(self) -> $raw {
                self.0
            }

            /// Convert from `f64`, round-to-nearest (ties away from zero),
            /// saturating at the format bounds. NaN maps to zero, matching
            /// the behaviour of a host-side converter that feeds hardware.
            #[inline]
            pub fn from_f64(x: f64) -> Self {
                if x.is_nan() {
                    return $name(0);
                }
                let scaled = (x * (1i64 << $frac) as f64).round();
                if scaled >= <$raw>::MAX as f64 {
                    $name(<$raw>::MAX)
                } else if scaled <= <$raw>::MIN as f64 {
                    $name(<$raw>::MIN)
                } else {
                    $name(scaled as $raw)
                }
            }

            /// Checked conversion from `f64`: errors instead of saturating.
            pub fn try_from_f64(x: f64) -> Result<Self, crate::FixedError> {
                if !x.is_finite() {
                    return Err(crate::FixedError::NotFinite);
                }
                let scaled = (x * (1i64 << $frac) as f64).round();
                if scaled > <$raw>::MAX as f64 || scaled < <$raw>::MIN as f64 {
                    Err(crate::FixedError::OutOfRange { format: Self::FORMAT })
                } else {
                    Ok($name(scaled as $raw))
                }
            }

            /// Convert to `f64` exactly (the mantissa always fits).
            #[inline]
            pub fn to_f64(self) -> f64 {
                self.0 as f64 / (1i64 << $frac) as f64
            }

            /// Saturating addition within the format.
            #[inline]
            pub fn saturating_add(self, rhs: Self) -> Self {
                $name(self.0.saturating_add(rhs.0))
            }

            /// Saturating subtraction within the format.
            #[inline]
            pub fn saturating_sub(self, rhs: Self) -> Self {
                $name(self.0.saturating_sub(rhs.0))
            }

            /// Wrapping addition (what a plain ALU `add` on the mantissa does).
            #[inline]
            pub fn wrapping_add(self, rhs: Self) -> Self {
                $name(self.0.wrapping_add(rhs.0))
            }

            /// Arithmetic shift right of the mantissa (divide by 2^n,
            /// rounding towards negative infinity — exactly what the DCU's
            /// shifter array does).
            #[inline]
            pub fn shr(self, n: u32) -> Self {
                $name(self.0 >> n.min(<$raw>::BITS - 1))
            }

            /// Negation, saturating at the most-negative value.
            #[inline]
            pub fn saturating_neg(self) -> Self {
                $name(self.0.checked_neg().unwrap_or(<$raw>::MAX))
            }

            /// Widen into the accumulator type.
            #[inline]
            pub fn widen(self) -> crate::wide::Wide {
                crate::wide::Wide::new(self.0 as i64, $frac)
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{}", self.to_f64())
            }
        }

        impl From<$name> for f64 {
            fn from(v: $name) -> f64 {
                v.to_f64()
            }
        }
    };
}

q_type!(
    /// Q4.11 signed fixed point in 16 bits: range [-16, 16), LSB = 2^-11.
    /// Used for the Izhikevich `a`, `b`, `d` parameters.
    Q4_11, i16, i32, QFormat::Q4_11, 11
);

q_type!(
    /// Q7.8 signed fixed point in 16 bits: range [-128, 128), LSB = 2^-8.
    /// Used for the membrane potential `v`, recovery variable `u` and the
    /// reset parameter `c`.
    Q7_8, i16, i32, QFormat::Q7_8, 8
);

q_type!(
    /// Q15.16 signed fixed point in 32 bits: range [-32768, 32768),
    /// LSB = 2^-16. Used for the synaptic current `Isyn`.
    Q15_16, i32, i64, QFormat::Q15_16, 16
);

impl Q15_16 {
    /// Narrow to Q7.8 with round-to-nearest and saturation (the corrected
    /// conversion the NPU performs internally).
    #[inline]
    pub fn to_q7_8_rounded(self) -> Q7_8 {
        // Q15.16 -> Q7.8 drops 8 fractional bits.
        let rounded = ((self.0 as i64) + (1 << 7)) >> 8;
        Q7_8(rounded.clamp(i16::MIN as i64, i16::MAX as i64) as i16)
    }

    /// Narrow to Q7.8 by pure truncation of the low 8 bits *without*
    /// saturation (wraps). This reproduces the defective conversion the
    /// paper describes for its non-NPU fixed-point Sudoku baseline (§VI-C),
    /// which prevented convergence.
    #[inline]
    pub fn to_q7_8_truncated(self) -> Q7_8 {
        Q7_8((self.0 >> 8) as i16)
    }
}

impl Q7_8 {
    /// Widen to Q15.16 (exact).
    #[inline]
    pub fn to_q15_16(self) -> Q15_16 {
        Q15_16((self.0 as i32) << 8)
    }
}

/// Pack the neuron state `v` (high half) and `u` (low half) into the 32-bit
/// "VU word" layout used by the `nmpn` instruction (Table I: bits 31..16
/// hold `v`, bits 15..0 hold `u`, both Q7.8).
#[inline]
pub fn pack_vu(v: Q7_8, u: Q7_8) -> u32 {
    ((v.0 as u16 as u32) << 16) | (u.0 as u16 as u32)
}

/// Unpack a VU word into `(v, u)`.
#[inline]
pub fn unpack_vu(word: u32) -> (Q7_8, Q7_8) {
    let v = Q7_8((word >> 16) as u16 as i16);
    let u = Q7_8(word as u16 as i16);
    (v, u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_descriptors() {
        assert_eq!(QFormat::Q4_11.width(), 16);
        assert_eq!(QFormat::Q7_8.width(), 16);
        assert_eq!(QFormat::Q15_16.width(), 32);
        assert_eq!(QFormat::Q4_11.to_string(), "Q4.11");
        assert!((QFormat::Q7_8.max_value() - 127.99609375).abs() < 1e-12);
        assert_eq!(QFormat::Q7_8.min_value(), -128.0);
        assert_eq!(QFormat::Q15_16.epsilon(), 1.0 / 65536.0);
    }

    #[test]
    fn roundtrip_exact_values() {
        for &x in &[0.0, 1.0, -1.0, 0.5, -0.5, 2.25, -65.0, 30.0, 0.02] {
            let q = Q7_8::from_f64(x);
            assert!(
                (q.to_f64() - x).abs() <= QFormat::Q7_8.epsilon() / 2.0 + 1e-12,
                "{x}"
            );
        }
    }

    #[test]
    fn q4_11_parameter_values() {
        // Typical Izhikevich parameters must be representable with small error.
        let a = Q4_11::from_f64(0.02);
        assert!((a.to_f64() - 0.02).abs() < 1.0 / 2048.0);
        let b = Q4_11::from_f64(0.2);
        assert!((b.to_f64() - 0.2).abs() < 1.0 / 2048.0);
        let d = Q4_11::from_f64(8.0);
        assert_eq!(d.to_f64(), 8.0);
    }

    #[test]
    fn saturation_bounds() {
        assert_eq!(Q7_8::from_f64(1e9), Q7_8::MAX);
        assert_eq!(Q7_8::from_f64(-1e9), Q7_8::MIN);
        assert_eq!(Q7_8::from_f64(f64::NAN), Q7_8::ZERO);
        assert_eq!(Q15_16::from_f64(40000.0), Q15_16::MAX);
        assert_eq!(Q15_16::from_f64(-40000.0), Q15_16::MIN);
    }

    #[test]
    fn try_from_errors() {
        assert!(Q7_8::try_from_f64(127.0).is_ok());
        assert_eq!(
            Q7_8::try_from_f64(200.0),
            Err(crate::FixedError::OutOfRange {
                format: QFormat::Q7_8
            })
        );
        assert_eq!(
            Q7_8::try_from_f64(f64::INFINITY),
            Err(crate::FixedError::NotFinite)
        );
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(Q7_8::MAX.saturating_add(Q7_8::ONE), Q7_8::MAX);
        assert_eq!(Q7_8::MIN.saturating_sub(Q7_8::ONE), Q7_8::MIN);
        assert_eq!(Q7_8::MIN.saturating_neg(), Q7_8::MAX);
        assert_eq!(
            Q7_8::from_f64(1.0)
                .saturating_add(Q7_8::from_f64(2.0))
                .to_f64(),
            3.0
        );
    }

    #[test]
    fn shift_is_arithmetic() {
        assert_eq!(Q15_16::from_f64(-8.0).shr(1).to_f64(), -4.0);
        assert_eq!(Q15_16::from_f64(8.0).shr(3).to_f64(), 1.0);
        // Shift floors towards negative infinity on the mantissa.
        assert_eq!(Q15_16(-1).shr(1), Q15_16(-1));
    }

    #[test]
    fn narrowing_rounds_and_saturates() {
        let x = Q15_16::from_f64(1.001953125); // 1 + 128.5/65536 -> rounds up at Q7.8
        assert_eq!(x.to_q7_8_rounded().to_f64(), 1.00390625);
        let big = Q15_16::from_f64(300.0);
        assert_eq!(big.to_q7_8_rounded(), Q7_8::MAX);
        // Truncated variant wraps instead (the paper's defective baseline).
        assert_ne!(big.to_q7_8_truncated(), Q7_8::MAX);
    }

    #[test]
    fn widening_is_exact() {
        let x = Q7_8::from_f64(-65.0);
        assert_eq!(x.to_q15_16().to_f64(), -65.0);
    }

    #[test]
    fn vu_word_pack_unpack() {
        let v = Q7_8::from_f64(-65.0);
        let u = Q7_8::from_f64(-13.0);
        let w = pack_vu(v, u);
        let (v2, u2) = unpack_vu(w);
        assert_eq!(v, v2);
        assert_eq!(u, u2);
        // v sits in the high half.
        assert_eq!((w >> 16) as u16, v.0 as u16);
    }
}

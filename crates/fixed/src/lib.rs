//! Signed Q-format fixed-point arithmetic for the IzhiRISC-V reproduction.
//!
//! The paper's NPU/DCU operate on signed 16-bit and 32-bit fixed-point values
//! in several Q-formats (Table I of the paper):
//!
//! | Operand            | Format  | Storage |
//! |--------------------|---------|---------|
//! | `a`, `b`, `d`      | Q4.11   | `i16`   |
//! | `c` (reset volt.)  | Q7.8    | `i16`   |
//! | `v`, `u`           | Q7.8    | `i16`   |
//! | `Isyn`             | Q15.16  | `i32`   |
//!
//! The VHDL implementation uses the IEEE `sfixed` package with a *variable
//! size accumulator* so intermediate products never overflow; results are
//! resized (with saturation) back to the storage format. This crate mirrors
//! that behaviour: concrete storage types ([`Q4_11`], [`Q7_8`], [`Q15_16`])
//! plus a [`Wide`] accumulator carrying an `i64` mantissa and an explicit
//! fractional-bit count, with both round-to-nearest and truncating resize
//! (the paper notes its non-NPU fixed-point baseline truncated incorrectly —
//! we keep both so that failure mode is reproducible).

#![allow(clippy::should_implement_trait)] // shr/add/mul mirror the RTL operation names

pub mod qformat;
pub mod wide;

pub use qformat::{QFormat, Q15_16, Q4_11, Q7_8};
pub use wide::{ResizeMode, Wide};

/// Errors produced by checked fixed-point conversions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FixedError {
    /// The value does not fit in the target format (would saturate).
    OutOfRange {
        /// Target format that could not represent the value.
        format: QFormat,
    },
    /// The input was not finite (NaN or infinity).
    NotFinite,
}

impl core::fmt::Display for FixedError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FixedError::OutOfRange { format } => {
                write!(f, "value out of range for {format}")
            }
            FixedError::NotFinite => write!(f, "value is not finite"),
        }
    }
}

impl std::error::Error for FixedError {}

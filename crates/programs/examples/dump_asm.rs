//! Dump the engine-emitted assembly for a scenario (debugging aid for
//! assembler/peephole work): `cargo run -p izhi_programs --example dump_asm -- net8020`
use izhi_programs::engine::build_asm;
use izhi_programs::scenario::{self, ScenarioParams};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "net8020".into());
    let sc = scenario::find(&name).expect("registered scenario");
    let wl = sc.build_quick(&ScenarioParams::default());
    let decay = (1.0 - 0.5 / wl.cfg().tau as f64) as f32;
    println!(".equ DECAY_F32, {:#x}", decay.to_bits());
    print!("{}", build_asm(wl.cfg()));
}

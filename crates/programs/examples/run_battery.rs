//! Run the guest-side ISA self-test battery on the simulator and print
//! the per-case results.
fn main() {
    let (failures, console) = izhi_programs::selftest::run_battery();
    print!("{console}");
    println!(
        "\n{} cases, {failures} failures",
        izhi_programs::selftest::battery().len()
    );
    std::process::exit(if failures == 0 { 0 } else { 1 });
}

//! Cross-crate exactness regression: the batched predecoded `System::run`
//! must match manual `step_core` single-stepping on the real guest
//! workloads — the ISA self-test battery and a dual-core engine run —
//! with identical consoles, spike rasters and `PerfCounters`.

use izhi_isa::Assembler;
use izhi_programs::engine::{build_asm, EngineConfig, Variant, WorkloadResult};
use izhi_programs::net8020::Net8020Workload;
use izhi_programs::scenario::Workload as _;
use izhi_programs::selftest;
use izhi_sim::{FaultKind, FaultPlan, SchedMode, System, SystemConfig, TimingModel};

/// Drive `sys` to completion one instruction at a time with the
/// event-driven schedule (min local time, lowest hart id on ties).
fn run_by_single_stepping(sys: &mut System, max_steps: u64) {
    for _ in 0..max_steps {
        let mut pick: Option<usize> = None;
        for i in 0..sys.n_cores() {
            if sys.core(i).halted() {
                continue;
            }
            match pick {
                Some(j) if sys.core(j).time <= sys.core(i).time => {}
                _ => pick = Some(i),
            }
        }
        let Some(i) = pick else {
            return;
        };
        sys.step_core(i).expect("reference stepping trapped");
    }
    panic!("reference run did not halt within {max_steps} steps");
}

fn assert_identical(fast: &System, slow: &System) {
    for i in 0..fast.n_cores() {
        assert_eq!(fast.core(i).time, slow.core(i).time, "core {i} clock");
        assert_eq!(
            fast.core(i).counters,
            slow.core(i).counters,
            "core {i} counters"
        );
        assert_eq!(
            fast.core(i).roi_counters(),
            slow.core(i).roi_counters(),
            "core {i} ROI counters"
        );
    }
    assert_eq!(fast.shared().dev.spike_log, slow.shared().dev.spike_log);
    assert_eq!(fast.console(), slow.console());
}

#[test]
fn selftest_battery_run_matches_single_stepping() {
    let prog = Assembler::new()
        .assemble(&selftest::battery_asm())
        .expect("battery assembles");
    let mut fast = System::new(SystemConfig::default());
    assert!(fast.load_program(&prog));
    fast.run(50_000_000).expect("batched run");
    assert!(
        fast.console().ends_with('0'),
        "battery failed:\n{}",
        fast.console()
    );

    let mut slow = System::new(SystemConfig::default());
    assert!(slow.load_program(&prog));
    run_by_single_stepping(&mut slow, 50_000_000);
    assert_identical(&fast, &slow);
}

/// The fused two-core loop hands off to a batched tail once one core
/// halts; an asymmetric program pins that transition (core 1 halts almost
/// immediately, core 0 keeps running through MMIO and SDRAM traffic).
#[test]
fn dual_core_asymmetric_halt_matches_single_stepping() {
    let src = "
        _start: li   t0, 0xF0000004
                lw   t1, (t0)          # core id
                bnez t1, done
                li   s0, 5000
                li   s1, 0x10000000
        loop:   lw   t2, (s1)
                addi t2, t2, 3
                sw   t2, (s1)
                li   t3, 0xF000001C
                andi t4, s0, 0xFF
                bnez t4, nospike
                sw   s0, (t3)          # occasional spike-log write
        nospike:
                addi s0, s0, -1
                bnez s0, loop
        done:   ebreak
    ";
    let prog = Assembler::new().assemble(src).expect("assembles");
    let mut fast = System::new(SystemConfig::max10_dual_core());
    assert!(fast.load_program(&prog));
    fast.run(10_000_000).expect("batched run");

    let mut slow = System::new(SystemConfig::max10_dual_core());
    assert!(slow.load_program(&prog));
    run_by_single_stepping(&mut slow, 10_000_000);
    assert_identical(&fast, &slow);
}

/// Three cores exercise the general scan scheduler (the fused loop only
/// covers the two-core case) on a real barrier-coupled engine image.
#[test]
fn triple_core_engine_run_matches_single_stepping() {
    let wl = Net8020Workload::sized(24, 6, 40, 3, 5, Variant::Npu);
    let decay = (1.0 - 0.5 / wl.cfg.tau as f64) as f32;
    let asm = format!(
        ".equ DECAY_F32, {:#x}\n{}",
        decay.to_bits(),
        build_asm(&wl.cfg)
    );
    let prog = Assembler::new().assemble(&asm).expect("engine assembles");

    let mut cfg = wl.cfg.clone();
    cfg.system.n_cores = cfg.n_cores;
    let build = || {
        let mut sys = System::new(cfg.system.clone());
        assert!(sys.load_program(&prog));
        wl.image.load_into(&mut sys, &cfg);
        sys
    };
    let mut fast = build();
    fast.run(1_000_000_000).expect("batched run");
    let mut slow = build();
    run_by_single_stepping(&mut slow, 1_000_000_000);
    assert_identical(&fast, &slow);
}

#[test]
fn dual_core_engine_run_matches_single_stepping() {
    // A real (small) 80-20 engine image on two cores: barrier-coupled
    // phases, spike-log traffic, ROI counters — the full hot path.
    let wl = Net8020Workload::sized(40, 10, 60, 2, 5, Variant::Npu);
    let decay = (1.0 - 0.5 / wl.cfg.tau as f64) as f32;
    let asm = format!(
        ".equ DECAY_F32, {:#x}\n{}",
        decay.to_bits(),
        build_asm(&wl.cfg)
    );
    let prog = Assembler::new().assemble(&asm).expect("engine assembles");

    let build = |cfg: &EngineConfig| {
        let mut sys = System::new(cfg.system.clone());
        assert!(sys.load_program(&prog));
        wl.image.load_into(&mut sys, cfg);
        sys
    };
    let mut cfg = wl.cfg.clone();
    cfg.system.n_cores = cfg.n_cores;

    let mut fast = build(&cfg);
    fast.run(1_000_000_000).expect("batched run");
    assert!(
        !fast.shared().dev.spike_log.is_empty(),
        "engine produced no spikes — comparison would be vacuous"
    );

    let mut slow = build(&cfg);
    run_by_single_stepping(&mut slow, 1_000_000_000);
    assert_identical(&fast, &slow);
}

/// Scenario-level superblock exactness: the same dual-core engine image
/// with block fusion forced on vs off must produce identical spike
/// rasters, consoles, clocks and the full counter block — fusion is a
/// dispatch optimisation, never a semantic one.
#[test]
fn dual_core_engine_superblocks_on_off_bit_identical() {
    let wl = Net8020Workload::sized(40, 10, 60, 2, 5, Variant::Npu);
    let decay = (1.0 - 0.5 / wl.cfg.tau as f64) as f32;
    let asm = format!(
        ".equ DECAY_F32, {:#x}\n{}",
        decay.to_bits(),
        build_asm(&wl.cfg)
    );
    let prog = Assembler::new().assemble(&asm).expect("engine assembles");

    let run = |superblocks: bool| {
        let mut cfg = wl.cfg.clone();
        cfg.system.n_cores = cfg.n_cores;
        cfg.system.superblocks = superblocks;
        let mut sys = System::new(cfg.system.clone());
        assert!(sys.load_program(&prog));
        wl.image.load_into(&mut sys, &cfg);
        sys.run(1_000_000_000).expect("engine run");
        sys
    };
    let on = run(true);
    assert!(
        !on.shared().dev.spike_log.is_empty(),
        "engine produced no spikes — comparison would be vacuous"
    );
    let off = run(false);
    assert_identical(&on, &off);
}

/// Every relaxed sched × timing × host-thread combination the battery
/// fans over; kernel batches only engage under these (exact timing keeps
/// interpreting by design).
fn relaxed_modes() -> [SchedMode; 6] {
    let q = SchedMode::DEFAULT_QUANTUM;
    let relaxed = |timing| SchedMode::Relaxed { quantum: q, timing };
    let parallel = |host_threads, timing| SchedMode::RelaxedParallel {
        quantum: q,
        host_threads,
        timing,
    };
    [
        relaxed(TimingModel::Unit),
        relaxed(TimingModel::Estimated),
        parallel(1, TimingModel::Unit),
        parallel(2, TimingModel::Unit),
        parallel(1, TimingModel::Estimated),
        parallel(2, TimingModel::Estimated),
    ]
}

fn assert_results_identical(on: &WorkloadResult, off: &WorkloadResult, tag: &str) {
    assert_eq!(on.cycles, off.cycles, "{tag}: clock diverges");
    assert_eq!(on.instret, off.instret, "{tag}: instret diverges");
    assert_eq!(
        on.raster.spikes, off.raster.spikes,
        "{tag}: raster diverges"
    );
    assert_eq!(
        on.raster_hash(),
        off.raster_hash(),
        "{tag}: raster hash diverges"
    );
    assert_eq!(on.counters, off.counters, "{tag}: ROI counters diverge");
    assert_eq!(
        on.weight_hash, off.weight_hash,
        "{tag}: weight hash diverges"
    );
}

/// Scenario-level kernel exactness: the relaxed schedules batch-execute
/// the engine's registered loop spans (phase-A scatter natively, phase B
/// through the generic trace executor); toggling the kernels must be
/// invisible in every architectural observable — raster, clocks, retired
/// counts, the full ROI counter block — across both arithmetic variants
/// and every relaxed sched × timing × host-thread combination.
#[test]
fn dual_core_engine_kernels_on_off_bit_identical() {
    for variant in [Variant::Npu, Variant::BaseFixed] {
        for mode in relaxed_modes() {
            let run = |kernels: bool| {
                let mut wl = Net8020Workload::sized(40, 10, 60, 2, 5, variant);
                wl.cfg.system.sched = mode;
                wl.cfg.system.kernels = kernels;
                wl.run().expect("engine run")
            };
            let on = run(true);
            assert!(
                !on.raster.spikes.is_empty(),
                "engine produced no spikes — comparison would be vacuous"
            );
            let off = run(false);
            assert_results_identical(&on, &off, &format!("{variant:?} {mode:?}"));
        }
    }
}

/// Kernel batches under an armed fault plan: the batch entry refuses any
/// iteration whose retirement count could cross the trigger, so the fault
/// fires at exactly the same instruction with kernels on or off — whether
/// the plan corrupts spike traffic (MMIO stores defer to the interpreter,
/// which applies the corruption) or traps the guest outright.
#[test]
fn engine_kernels_identical_under_injected_faults() {
    let cases = [
        (0u32, 2_000u64, FaultKind::CorruptSpike(3)),
        (1, 120_000, FaultKind::CorruptSpike(1)),
        (0, 250_000, FaultKind::GuestTrap),
    ];
    for (core, at, kind) in cases {
        for mode in relaxed_modes() {
            let run = |kernels: bool| {
                let mut wl = Net8020Workload::sized(40, 10, 60, 2, 5, Variant::Npu);
                wl.cfg.system.sched = mode;
                wl.cfg.system.kernels = kernels;
                wl.cfg.system.faults = FaultPlan::none().with(core, at, kind);
                wl.run()
            };
            let tag = format!("{mode:?} {kind:?}@{at} core{core}");
            match (run(true), run(false)) {
                (Ok(on), Ok(off)) => assert_results_identical(&on, &off, &tag),
                (Err(on), Err(off)) => assert_eq!(on, off, "{tag}: errors diverge"),
                (on, off) => panic!("{tag}: outcome diverges: {on:?} vs {off:?}"),
            }
        }
    }
}

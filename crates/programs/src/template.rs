//! Build-once run templates: cached, copy-on-write guest builds.
//!
//! Every cold run pays the same construction bill — generate the engine
//! assembly, assemble it, allocate a [`System`], upload the weight/noise
//! tables, predecode the code — before the first guest cycle executes.
//! For a battery, a service worker pool or a wide seed sweep that bill is
//! paid per *run* even though it only depends on the (scenario, shape)
//! pair. This module pays it once:
//!
//! * [`RunTemplate`] is an immutable snapshot of a fully built run —
//!   loaded memory, predecoded micro-op stream, entry point, and the
//!   [`PatchMap`]s naming which memory spans hold the program versus the
//!   guest image. Templates are built through [`Scenario::template`] /
//!   [`Scenario::template_quick`] and cached in a keyed,
//!   capacity-bounded, process-wide cache (LRU eviction).
//! * [`RunTemplate::instantiate`] stamps out a [`RunInstance`]: a
//!   [`Workload`] whose runs start from bulk copies of the snapshot
//!   spans instead of a fresh build. The template itself is **never
//!   mutated** (copy-on-write: each run materialises its own memory), so
//!   any number of instances can run concurrently.
//!
//! ## Cache keying and seeds
//!
//! The cache key is the scenario name plus the merged parameters *with
//! the seed erased* — the seed changes table contents, never the shape,
//! the program or the layout. Instantiating at the template's own build
//! seed replays the recorded image spans (pure bulk copies — the fast
//! path a repeat-seed battery or service hits). Instantiating at a
//! different seed rebuilds the host-side image (cheap: no assembly, no
//! predecode, no fresh `System` plumbing) and patches exactly the spans
//! in the template's [`PatchMap`] over a fresh memory.
//!
//! ## Bypass
//!
//! Setting `IZHI_TEMPLATE_CACHE=0` disables the process-wide cache: the
//! battery runner, the service and the CLI then build every run cold
//! (CI keeps that path exercised). Templates built explicitly while the
//! cache is disabled still work — they are just not shared.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use izhi_sim::{MainMemory, SchedMode, SimError, System};

use crate::engine::{
    assert_run_shape, prepare_run, run_prepared_system, EngineConfig, GuestImage, PatchMap,
    WorkloadResult,
};
use crate::scenario::{Scenario, ScenarioParams, Workload};

/// An immutable, fully built run snapshot for one (scenario, shape).
///
/// Holds everything `run_workload` builds before the first cycle, plus
/// the prototype workload it was built from (for re-seeding and
/// verification). See the [module docs](self) for the contract.
pub struct RunTemplate {
    scenario: &'static Scenario,
    /// Fully merged build parameters (including the build seed).
    params: ScenarioParams,
    /// The cold-built prototype. Never run; cloned per instantiation.
    workload: Box<dyn Workload>,
    /// Loaded, never-executed guest memory (program + image tables).
    mem: MainMemory,
    /// Predecoded micro-op stream for the program segments.
    code: izhi_sim::CodeTable,
    entry: u32,
    /// Spans of `mem` holding the program segments (seed-invariant).
    prog_spans: PatchMap,
    /// Spans of `mem` holding the image tables (seed-dependent).
    patches: PatchMap,
}

impl core::fmt::Debug for RunTemplate {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RunTemplate")
            .field("scenario", &self.scenario.name)
            .field("params", &self.params)
            .field("entry", &self.entry)
            .field("prog_bytes", &self.prog_spans.bytes())
            .field("image_bytes", &self.patches.bytes())
            .finish()
    }
}

impl RunTemplate {
    /// Build a template from scratch (one cold construction).
    fn build(scenario: &'static Scenario, params: ScenarioParams) -> RunTemplate {
        let workload = scenario.build_raw(&params);
        let prep = prepare_run(workload.cfg(), workload.image());
        RunTemplate {
            scenario,
            params,
            workload,
            mem: prep.mem,
            code: prep.code,
            entry: prep.entry,
            prog_spans: prep.prog_spans,
            patches: prep.image_spans,
        }
    }

    /// The scenario this template belongs to.
    pub fn scenario(&self) -> &'static Scenario {
        self.scenario
    }

    /// The fully merged parameters the template was built at (the seed
    /// field is the *build* seed; instances may use another).
    pub fn params(&self) -> ScenarioParams {
        self.params
    }

    /// The recorded image patch map (the seed-dependent spans).
    pub fn patches(&self) -> &PatchMap {
        &self.patches
    }

    /// Stamp out a runnable instance at `seed` under `sched` (the timing
    /// model rides inside [`SchedMode`]'s relaxed variants).
    ///
    /// At the template's own build seed this is pure reuse: runs replay
    /// the recorded spans with bulk copies. At any other seed the
    /// host-side image is rebuilt (the only seed-dependent work) and its
    /// tables are patched over the snapshot's program spans; assembly,
    /// predecode and layout are still reused. Either way the template is
    /// untouched — instances never alias writable state.
    pub fn instantiate(self: &Arc<Self>, seed: u32, sched: SchedMode) -> RunInstance {
        if self.params.seed == Some(seed) {
            return self.instantiate_as_built(sched);
        }
        {
            let reseeded = ScenarioParams {
                seed: Some(seed),
                ..self.params
            };
            let workload = self.scenario.build_raw(&reseeded);
            let (a, b) = (workload.cfg(), self.workload.cfg());
            assert!(
                a.n == b.n
                    && a.ticks == b.ticks
                    && a.n_cores == b.n_cores
                    && a.tau == b.tau
                    && a.pin == b.pin
                    && a.variant == b.variant
                    && a.sparse == b.sparse
                    && a.scheduled == b.scheduled
                    && a.coupled == b.coupled
                    && a.plastic == b.plastic
                    && a.stim == b.stim,
                "{}: re-seeding changed the engine shape — the scenario's \
                 shape must not depend on the seed",
                self.scenario.name
            );
            let mut cfg = workload.cfg().clone();
            cfg.system.sched = sched;
            RunInstance {
                template: Arc::clone(self),
                workload,
                cfg,
                fresh_image: true,
            }
        }
    }

    /// Stamp out an instance at the template's own build parameters
    /// (pure snapshot reuse, no re-seeding) — what a caller without an
    /// explicit seed wants.
    pub fn instantiate_as_built(self: &Arc<Self>, sched: SchedMode) -> RunInstance {
        let workload = self.workload.clone_box();
        let mut cfg = workload.cfg().clone();
        cfg.system.sched = sched;
        RunInstance {
            template: Arc::clone(self),
            workload,
            cfg,
            fresh_image: false,
        }
    }
}

/// A runnable instantiation of a [`RunTemplate`]: a [`Workload`] whose
/// [`Workload::run`]/[`Workload::run_budgeted`] start from the snapshot
/// (each attempt materialises its own fresh memory, so retries and
/// concurrent instances never share writable state), while
/// [`Workload::run_cold`] still builds from scratch for differential
/// comparison.
pub struct RunInstance {
    template: Arc<RunTemplate>,
    /// The workload at this instance's seed (prototype clone, or a
    /// host-side rebuild when the seed differs from the template's).
    workload: Box<dyn Workload>,
    /// This instance's configuration (sched/faults/wall-limit are
    /// per-instance; the shape must stay the template's).
    cfg: EngineConfig,
    /// Whether the image differs from the snapshot and must be patched
    /// in rather than replayed.
    fresh_image: bool,
}

impl core::fmt::Debug for RunInstance {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("RunInstance")
            .field("template", &self.template)
            .field("fresh_image", &self.fresh_image)
            .finish()
    }
}

impl RunInstance {
    /// The template this instance was stamped from.
    pub fn template(&self) -> &Arc<RunTemplate> {
        &self.template
    }
}

impl Workload for RunInstance {
    fn cfg(&self) -> &EngineConfig {
        &self.cfg
    }

    fn cfg_mut(&mut self) -> &mut EngineConfig {
        &mut self.cfg
    }

    fn image(&self) -> &GuestImage {
        self.workload.image()
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(RunInstance {
            template: Arc::clone(&self.template),
            workload: self.workload.clone_box(),
            cfg: self.cfg.clone(),
            fresh_image: self.fresh_image,
        })
    }

    fn max_cycles(&self) -> u64 {
        self.workload.max_cycles()
    }

    fn run_budgeted(&self, max_cycles: u64) -> Result<WorkloadResult, SimError> {
        let t = &self.template;
        // The snapshot is only valid for the shape it was built at; the
        // per-instance knobs (sched, faults, wall limit, clock) live in
        // cfg.system and are applied below.
        {
            let b = t.workload.cfg();
            assert!(
                self.cfg.n == b.n
                    && self.cfg.ticks == b.ticks
                    && self.cfg.n_cores == b.n_cores
                    && self.cfg.tau == b.tau
                    && self.cfg.pin == b.pin
                    && self.cfg.variant == b.variant
                    && self.cfg.sparse == b.sparse
                    && self.cfg.scheduled == b.scheduled
                    && self.cfg.coupled == b.coupled
                    && self.cfg.plastic == b.plastic
                    && self.cfg.stim == b.stim,
                "RunInstance shape diverged from its template — rebuild \
                 (or use run_cold()) after mutating shape fields"
            );
        }
        assert_run_shape(&self.cfg, self.workload.image());
        let mut system_cfg = self.cfg.system.clone();
        system_cfg.n_cores = self.cfg.n_cores;
        // Copy-on-write materialisation: a fresh memory, the program
        // spans replayed from the snapshot, and the image either
        // replayed (same seed) or re-patched from the rebuilt tables.
        let mut mem = MainMemory::new(system_cfg.sdram_size, system_cfg.scratch_size);
        t.prog_spans.replay(&t.mem, &mut mem);
        if self.fresh_image {
            let mut patches = PatchMap::default();
            self.workload
                .image()
                .load_into_mem(&mut mem, &self.cfg, &mut patches);
        } else {
            t.patches.replay(&t.mem, &mut mem);
        }
        let mut sys = System::from_snapshot(system_cfg, mem, t.code.clone(), t.entry);
        run_prepared_system(&mut sys, &self.cfg, max_cycles)
    }

    fn verify(&self, res: &WorkloadResult) -> Result<(), String> {
        self.workload.verify(res)
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

// ---------------------------------------------------------------------------
// The process-wide template cache.
// ---------------------------------------------------------------------------

/// Default capacity of the process-wide cache (templates, not bytes):
/// enough for every registered scenario's quick shape plus headroom for
/// a few full-scale ones.
pub const DEFAULT_CACHE_CAPACITY: usize = 16;

#[derive(PartialEq, Eq, Hash, Clone)]
struct CacheKey {
    scenario: &'static str,
    /// Merged parameters with the seed erased (seed-keyed entries would
    /// defeat the point of `instantiate(seed, ..)`).
    shape: ScenarioParams,
}

/// Hit/miss counters and occupancy of the process-wide cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a template.
    pub misses: u64,
    /// Templates currently resident.
    pub len: usize,
}

struct CacheInner {
    map: HashMap<CacheKey, Arc<RunTemplate>>,
    /// LRU order: front = coldest, back = hottest.
    order: Vec<CacheKey>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl CacheInner {
    fn new(capacity: usize) -> Self {
        CacheInner {
            map: HashMap::new(),
            order: Vec::new(),
            capacity: capacity.max(1),
            hits: 0,
            misses: 0,
        }
    }

    fn touch(&mut self, key: &CacheKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    fn get_or_build(
        &mut self,
        scenario: &'static Scenario,
        merged: ScenarioParams,
    ) -> (Arc<RunTemplate>, bool) {
        let key = CacheKey {
            scenario: scenario.name,
            shape: ScenarioParams {
                seed: None,
                ..merged
            },
        };
        if let Some(tpl) = self.map.get(&key) {
            self.hits += 1;
            let tpl = Arc::clone(tpl);
            self.touch(&key);
            return (tpl, true);
        }
        self.misses += 1;
        let tpl = Arc::new(RunTemplate::build(scenario, merged));
        if self.map.len() >= self.capacity {
            let coldest = self.order.remove(0);
            self.map.remove(&coldest);
        }
        self.map.insert(key.clone(), Arc::clone(&tpl));
        self.order.push(key);
        (tpl, false)
    }
}

fn cache() -> &'static Mutex<CacheInner> {
    static CACHE: OnceLock<Mutex<CacheInner>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(CacheInner::new(DEFAULT_CACHE_CAPACITY)))
}

fn lock_cache() -> std::sync::MutexGuard<'static, CacheInner> {
    // A panic inside a supervised build is caught upstream; the cache
    // state itself is always consistent, so poisoning is ignorable.
    cache().lock().unwrap_or_else(|e| e.into_inner())
}

fn enabled_from(value: Option<&str>) -> bool {
    value != Some("0")
}

/// Whether the process-wide cache is enabled (`IZHI_TEMPLATE_CACHE=0`
/// disables it; anything else, including unset, enables it). Bulk
/// runners consult this to choose between the template and cold paths.
pub fn cache_enabled() -> bool {
    enabled_from(std::env::var("IZHI_TEMPLATE_CACHE").ok().as_deref())
}

/// Current hit/miss counters and occupancy of the process-wide cache.
pub fn cache_stats() -> CacheStats {
    let c = lock_cache();
    CacheStats {
        hits: c.hits,
        misses: c.misses,
        len: c.map.len(),
    }
}

/// Drop every cached template and reset the counters (test hook; also
/// the escape hatch if a long-lived process wants its memory back).
pub fn clear_cache() {
    let mut c = lock_cache();
    c.map.clear();
    c.order.clear();
    c.hits = 0;
    c.misses = 0;
}

/// Look up or build the template for fully merged parameters, reporting
/// whether it was a cache hit (the service records this per job). With
/// the cache disabled this always builds fresh and reports a miss.
pub fn lookup(scenario: &'static Scenario, merged: ScenarioParams) -> (Arc<RunTemplate>, bool) {
    if !cache_enabled() {
        return (Arc::new(RunTemplate::build(scenario, merged)), false);
    }
    lock_cache().get_or_build(scenario, merged)
}

impl Scenario {
    /// The cached build template at full-scale defaults ([`lookup`] with
    /// `params` taken as already merged — `None` fields mean the
    /// builder's own defaults, exactly as [`Scenario::build`]).
    pub fn template(&'static self, params: &ScenarioParams) -> Arc<RunTemplate> {
        lookup(self, *params).0
    }

    /// The cached build template at the CI-sized quick shape, with
    /// `over` layered on top (the template analogue of
    /// [`Scenario::build_quick`]).
    pub fn template_quick(&'static self, over: &ScenarioParams) -> Arc<RunTemplate> {
        lookup(self, over.merged(self.quick)).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario;

    fn quick_seeded(name: &str, seed: u32) -> (&'static Scenario, ScenarioParams) {
        let sc = scenario::find(name).expect("registered");
        let params = ScenarioParams::default().with_seed(seed).merged(sc.quick);
        (sc, params)
    }

    #[test]
    fn bypass_env_parsing() {
        assert!(enabled_from(None));
        assert!(enabled_from(Some("1")));
        assert!(enabled_from(Some("")));
        assert!(!enabled_from(Some("0")));
    }

    #[test]
    fn same_seed_instance_matches_cold_run() {
        let (sc, params) = quick_seeded("net8020", 5);
        let tpl = Arc::new(RunTemplate::build(sc, params));
        let inst = tpl.instantiate(5, SchedMode::Exact);
        let warm = inst.run().unwrap();
        let cold = sc.build_quick(&params).run_cold().unwrap();
        assert_eq!(warm.raster_hash(), cold.raster_hash());
        assert_eq!(warm.cycles, cold.cycles);
        assert_eq!(warm.instret, cold.instret);
    }

    #[test]
    fn reseeded_instance_matches_cold_run_at_that_seed() {
        let (sc, params) = quick_seeded("net8020", 5);
        let tpl = Arc::new(RunTemplate::build(sc, params));
        let inst = tpl.instantiate(6, SchedMode::Exact);
        let warm = inst.run().unwrap();
        let cold_params = ScenarioParams {
            seed: Some(6),
            ..params
        };
        let cold = sc.build_quick(&cold_params).run_cold().unwrap();
        assert_eq!(warm.raster_hash(), cold.raster_hash());
        assert_eq!(warm.cycles, cold.cycles);
        assert_eq!(warm.instret, cold.instret);
        // And the two seeds genuinely differ.
        let base = tpl.instantiate(5, SchedMode::Exact).run().unwrap();
        assert_ne!(warm.raster_hash(), base.raster_hash());
    }

    #[test]
    fn instances_never_alias_writable_state() {
        let (sc, params) = quick_seeded("net8020", 5);
        let tpl = Arc::new(RunTemplate::build(sc, params));
        let a = tpl.instantiate(5, SchedMode::Exact);
        let mut b = tpl.instantiate(5, SchedMode::Exact);
        let first = a.run().unwrap();
        // Mutate instance B's configuration and run it: instance A and
        // the template must be unaffected.
        b.cfg_mut().system.sched = SchedMode::Relaxed {
            quantum: 1024,
            timing: izhi_sim::TimingModel::Unit,
        };
        let _ = b.run().unwrap();
        let again = a.run().unwrap();
        assert_eq!(first.raster_hash(), again.raster_hash());
        assert_eq!(first.cycles, again.cycles);
        // A third instantiation after all those runs still replays the
        // pristine snapshot.
        let c = tpl.instantiate(5, SchedMode::Exact).run().unwrap();
        assert_eq!(first.raster_hash(), c.raster_hash());
        assert_eq!(first.cycles, c.cycles);
        assert_eq!(first.instret, c.instret);
    }

    #[test]
    fn cache_is_shape_keyed_and_lru_bounded() {
        let sc = scenario::find("net8020").expect("registered");
        let mut cache = CacheInner::new(2);
        let small = ScenarioParams::default()
            .with_n(20)
            .with_ticks(10)
            .with_cores(1)
            .with_seed(1);
        // Same shape, different seed: one build, then hits.
        let (_, hit) = cache.get_or_build(sc, small);
        assert!(!hit);
        let (_, hit) = cache.get_or_build(sc, small.with_seed(2));
        assert!(hit, "seed must not be part of the cache key");
        // Two more shapes evict the coldest.
        let (_, hit) = cache.get_or_build(sc, small.with_ticks(12));
        assert!(!hit);
        let (_, hit) = cache.get_or_build(sc, small.with_ticks(14));
        assert!(!hit);
        assert_eq!(cache.map.len(), 2, "capacity bound");
        let (_, hit) = cache.get_or_build(sc, small);
        assert!(!hit, "the original shape was evicted (LRU)");
        assert_eq!(cache.hits, 1);
        assert_eq!(cache.misses, 4);
    }

    #[test]
    fn patch_map_replay_round_trips() {
        let mut src = MainMemory::new(1 << 16, 1 << 12);
        let mut dst = MainMemory::new(1 << 16, 1 << 12);
        let mut pm = PatchMap::default();
        assert!(src.write_bytes(0x100, &[1, 2, 3, 4]));
        pm.record(0x100, 4);
        pm.record(0x200, 0); // empty spans are dropped
        assert_eq!(pm.spans(), &[(0x100, 4)]);
        assert_eq!(pm.bytes(), 4);
        pm.replay(&src, &mut dst);
        assert_eq!(dst.read_bytes(0x100, 4).unwrap(), vec![1, 2, 3, 4]);
    }
}

//! The Sudoku WTA workload (Table VI, Fig. 4) running on the simulated
//! IzhiRISC-V cores.
//!
//! The 729-neuron network, biases and noise are prepared host-side (as the
//! paper's host would); the guest engine runs the network with the pin bit
//! set (§V-B) and exports spikes; the host decodes sliding windows of the
//! raster into candidate grids until one is a valid solution.

use izhi_sim::SimError;
use izhi_snn::sudoku::{SudokuGrid, WtaNetwork, WtaParams};

use crate::engine::{run_workload, EngineConfig, GuestImage, Variant, WorkloadResult};

/// A prepared Sudoku guest workload.
#[derive(Debug, Clone)]
pub struct SudokuWorkload {
    /// The puzzle being solved.
    pub puzzle: SudokuGrid,
    /// The WTA network (host view).
    pub wta: WtaNetwork,
    /// Guest memory image.
    pub image: GuestImage,
    /// Engine configuration.
    pub cfg: EngineConfig,
}

/// Result of a guest Sudoku run.
#[derive(Debug, Clone)]
pub struct SudokuRunResult {
    /// Decoded solution if the network converged.
    pub solution: Option<SudokuGrid>,
    /// Tick at which the solution window ended (= ticks used).
    pub solved_at: Option<u32>,
    /// The raw workload result (metrics, raster).
    pub workload: WorkloadResult,
}

impl SudokuWorkload {
    /// Prepare a workload for `puzzle` with default WTA parameters.
    pub fn new(puzzle: SudokuGrid, ticks: u32, n_cores: u32, seed: u32) -> Self {
        Self::with_params(
            puzzle,
            WtaParams::default(),
            ticks,
            n_cores,
            seed,
            Variant::Npu,
        )
    }

    /// Full control over WTA parameters and kernel variant.
    pub fn with_params(
        puzzle: SudokuGrid,
        params: WtaParams,
        ticks: u32,
        n_cores: u32,
        seed: u32,
        variant: Variant,
    ) -> Self {
        let wta = WtaNetwork::build(&puzzle, params);
        let image = GuestImage::from_network_scheduled(
            &wta.network,
            &wta.bias,
            &wta.noise_std,
            &params.noise_schedule(),
            ticks,
            seed,
        );
        let mut cfg = EngineConfig::new(729, ticks, n_cores, variant);
        cfg.pin = true; // §V-B: pin voltage improves Sudoku convergence
        cfg.sparse = true; // 29 of 729 targets per neuron: walk CSR rows
        cfg.tau = params.tau; // the WTA search needs the long decay
        SudokuWorkload {
            puzzle,
            wta,
            image,
            cfg,
        }
    }

    /// Run the guest and decode the raster window by window. (Named
    /// `solve` rather than `run` so the registry's parameterless
    /// [`crate::scenario::Workload::run`] stays unambiguous.)
    pub fn solve(&self, window: u32) -> Result<SudokuRunResult, SimError> {
        let workload = run_workload(&self.cfg, &self.image, 2_000_000_000_000)?;
        let (solution, solved_at) = self.decode(&workload, window);
        Ok(SudokuRunResult {
            solution,
            solved_at,
            workload,
        })
    }

    /// Scan consecutive windows of the raster for a valid decoded grid;
    /// returns the solution and the tick its window ended at, if any.
    pub fn decode(
        &self,
        workload: &WorkloadResult,
        window: u32,
    ) -> (Option<SudokuGrid>, Option<u32>) {
        let mut counts = vec![0u32; 729];
        let mut window_end = window;
        // Spikes are per-neuron chronological; bucket them by window.
        let mut events: Vec<(u32, u32)> = workload.raster.spikes.clone();
        events.sort_unstable();
        let mut idx = 0;
        while window_end <= self.cfg.ticks {
            while idx < events.len() && events[idx].0 < window_end {
                counts[events[idx].1 as usize] += 1;
                idx += 1;
            }
            let grid = WtaNetwork::decode(&counts);
            if grid.is_solved() && grid.extends(&self.puzzle) {
                return (Some(grid), Some(window_end));
            }
            counts.iter_mut().for_each(|c| *c = 0);
            window_end += window;
        }
        (None, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn easy_puzzle() -> SudokuGrid {
        let sol = SudokuGrid::canonical_solution();
        let mut p = sol;
        for i in [2, 12, 22, 32, 42, 52, 62, 72] {
            p.0[i] = 0;
        }
        p
    }

    #[test]
    fn guest_wta_solves_easy_puzzle() {
        let wl = SudokuWorkload::new(easy_puzzle(), 3000, 1, 21);
        let res = wl.solve(50).unwrap();
        let sol = res.solution.expect("guest WTA did not converge");
        assert!(sol.is_solved());
        assert!(sol.extends(&wl.puzzle));
        assert_eq!(sol, wl.puzzle.solve().unwrap());
        assert!(res.solved_at.unwrap() <= 3000);
    }

    #[test]
    fn guest_wta_dual_core_solves_and_is_faster_per_tick() {
        let p = easy_puzzle();
        let one = SudokuWorkload::new(p, 1500, 1, 21).solve(50).unwrap();
        let two = SudokuWorkload::new(p, 1500, 2, 21).solve(50).unwrap();
        // Identical image and noise: same raster, so same convergence.
        assert_eq!(one.solution.is_some(), two.solution.is_some());
        let t1 = one.workload.time_per_tick_ms();
        let t2 = two.workload.time_per_tick_ms();
        let speedup = t1 / t2;
        assert!((1.2..=2.0).contains(&speedup), "speedup {speedup:.3}");
    }

    #[test]
    fn guest_and_host_wta_dynamics_agree() {
        // Same puzzle, same parameters: the guest engine and the host
        // FixedSimulator share the NPU/DCU arithmetic, so their activity
        // statistics must match (this guards the parameter plumbing —
        // τ/pin/bias — between the two stacks).
        use izhi_snn::simulate::FixedSimulator;
        use izhi_snn::sudoku::{WtaNetwork, WtaParams};
        let puzzle = easy_puzzle();
        let params = WtaParams::default();
        let ticks = 400;
        let wl = SudokuWorkload::with_params(puzzle, params, ticks, 1, 5, Variant::Npu);
        let guest = wl.solve(100).unwrap();
        let wta = WtaNetwork::build(&puzzle, params);
        let mut host = FixedSimulator::new(&wta.network, params.tau, 99);
        host.pin = true;
        host.bias.copy_from_slice(&wta.bias);
        host.noise_std.copy_from_slice(&wta.noise_std);
        let host_raster = host.run(ticks);
        let g = guest.workload.raster.spikes.len() as f64;
        let h = host_raster.spikes.len() as f64;
        assert!(g > 0.0 && h > 0.0, "guest {g} host {h}");
        assert!(
            (g - h).abs() / h < 0.30,
            "guest {g} vs host {h} spikes — parameter plumbing diverged?"
        );
    }

    #[test]
    fn per_timestep_cost_matches_papers_order_of_magnitude() {
        // Paper Table VI: ~2.06 ms per timestep single-core at 30 MHz.
        let wl = SudokuWorkload::new(easy_puzzle(), 200, 1, 3);
        let res = wl.solve(50).unwrap();
        let per_tick = res.workload.time_per_tick_ms();
        assert!(
            (0.2..=10.0).contains(&per_tick),
            "per-timestep {per_tick:.3} ms implausible"
        );
    }
}

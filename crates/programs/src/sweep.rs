//! Barrier-light multi-population 80-20 sweep workload.
//!
//! The coupled 80-20 workload synchronises its cores twice per tick, which
//! is exactly the regime where cycle-exact multi-core interleaving is
//! expensive to simulate. Parameter sweeps have the opposite shape: each
//! core runs an *independent* 80-20 population (here: the same geometry
//! with per-core seeds, as a repetition/seed sweep), so cross-core
//! communication disappears entirely and the engine can drop the per-tick
//! barriers ([`EngineConfig::coupled`]` = false`). That makes the workload
//! the showcase for [`izhi_sim::SchedMode::Relaxed`]: long uninterrupted
//! per-core quanta with nothing to wait on but the single start-up barrier.
//!
//! Construction places population `k` in core `k`'s chunk and keeps the
//! combined weight matrix block-diagonal on the chunk boundaries, so the
//! uncoupled phase A (which only walks the core's own spike list) computes
//! the same dynamics a coupled run would: the cross-block weights it skips
//! are all zero. Tests pin that equivalence.

use izhi_snn::gen8020::Net8020;
use izhi_snn::network::Network;

use crate::engine::{EngineConfig, GuestImage, Variant, WorkloadResult};

/// One parameter point of a sweep: the population a core simulates.
///
/// A *seed* sweep varies only `seed` per core (the paper-style repetition
/// run); a *parameter-point* sweep holds the seed fixed and walks a grid
/// through the gain knobs, so every core simulates a different point of
/// parameter space in the same guest run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Network/noise generation seed of this population.
    pub seed: u32,
    /// Multiplier on both thalamic noise amplitudes (exc and inh).
    pub noise_gain: f64,
    /// Multiplier on the excitatory weights (inhibitory stay unscaled).
    pub weight_gain: f64,
}

impl SweepPoint {
    /// The neutral point: the paper's population at the given seed.
    pub fn seeded(seed: u32) -> Self {
        SweepPoint {
            seed,
            noise_gain: 1.0,
            weight_gain: 1.0,
        }
    }
}

/// A prepared multi-population sweep workload (one 80-20 net per core).
#[derive(Debug, Clone)]
pub struct Net8020SweepWorkload {
    /// The per-core populations (host view), in core order.
    pub subnets: Vec<Net8020>,
    /// The parameter point each core simulates, in core order.
    pub points: Vec<SweepPoint>,
    /// The combined block-diagonal guest image.
    pub image: GuestImage,
    /// Engine configuration (`coupled = false`).
    pub cfg: EngineConfig,
}

impl Net8020SweepWorkload {
    /// Build `n_cores` independent populations of `n_exc + n_inh` neurons
    /// each, seeded `seed, seed+1, …` (a repetition sweep), `ticks` 1 ms
    /// steps.
    pub fn sized(n_exc: usize, n_inh: usize, ticks: u32, n_cores: u32, seed: u32) -> Self {
        let points: Vec<SweepPoint> = (0..n_cores)
            .map(|k| SweepPoint::seeded(seed.wrapping_add(k)))
            .collect();
        Self::with_points(n_exc, n_inh, ticks, &points)
    }

    /// Build one population per entry of `points` (population `k` lands in
    /// core `k`'s chunk). This is the general constructor behind both the
    /// seed sweep and the per-core parameter-point sweep.
    pub fn with_points(n_exc: usize, n_inh: usize, ticks: u32, points: &[SweepPoint]) -> Self {
        let n_cores = points.len() as u32;
        assert!(n_cores >= 1, "a sweep needs at least one point");
        let sub_n = n_exc + n_inh;
        let mut subnets = Vec::with_capacity(points.len());
        let mut params = Vec::with_capacity(sub_n * points.len());
        let mut edges = Vec::new();
        let mut noise_std = Vec::with_capacity(sub_n * points.len());
        for (k, point) in points.iter().enumerate() {
            let mut net = Net8020::with_size(n_exc, n_inh, point.seed);
            // Charge normalisation as in the coupled workload (see
            // `Net8020Workload::sized`): weights deliver persistent current
            // with DCU decay, so scale by (1 - r) at τ = 2 — then apply
            // the point's excitatory gain.
            for pre in 0..sub_n {
                let gain = if net.is_excitatory(pre) {
                    0.25 * point.weight_gain
                } else {
                    0.25
                };
                let lo = net.network.row_ptr[pre] as usize;
                let hi = net.network.row_ptr[pre + 1] as usize;
                for w in &mut net.network.weights[lo..hi] {
                    *w *= gain;
                }
            }
            let base = k * sub_n;
            params.extend(net.network.params.iter().copied());
            for pre in 0..sub_n {
                for (post, w) in net.network.out_edges(pre) {
                    edges.push(((base + pre) as u32, (base + post as usize) as u32, w));
                }
            }
            noise_std.extend((0..sub_n).map(|i| {
                point.noise_gain
                    * if net.is_excitatory(i) {
                        net.exc_noise
                    } else {
                        net.inh_noise
                    }
            }));
            subnets.push(net);
        }
        let network = Network::from_edges(params, edges);
        let n = network.len();
        let bias = vec![0.0; n];
        let seed = points[0].seed;
        let image = GuestImage::from_network(&network, &bias, &noise_std, ticks, seed ^ 0x5EED);
        let mut cfg = EngineConfig::new(n, ticks, n_cores, Variant::Npu);
        cfg.coupled = false;
        // The block-diagonal construction is only valid when the chunk
        // boundaries coincide with the population boundaries.
        assert_eq!(cfg.chunk(), sub_n, "population does not fill its chunk");
        Net8020SweepWorkload {
            subnets,
            points: points.to_vec(),
            image,
            cfg,
        }
    }

    // Running lives on the `crate::scenario::Workload` trait impl; the
    // scheduling mode comes from `self.cfg.system.sched`.

    /// Spikes of population `k` only, with neuron ids rebased to the
    /// population (for per-sweep-point analysis).
    pub fn population_spikes(&self, res: &WorkloadResult, k: usize) -> Vec<(u32, u32)> {
        let sub_n = self.cfg.chunk() as u32;
        let lo = k as u32 * sub_n;
        res.raster
            .spikes
            .iter()
            .filter(|&&(_, n)| (lo..lo + sub_n).contains(&n))
            .map(|&(t, n)| (t, n - lo))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_workload;
    use crate::scenario::Workload as _;
    use izhi_sim::{SchedMode, TimingModel};

    fn sorted(res: &WorkloadResult) -> Vec<(u32, u32)> {
        let mut s = res.raster.spikes.clone();
        s.sort_unstable();
        s
    }

    #[test]
    fn sweep_populations_are_active_and_disjoint() {
        let wl = Net8020SweepWorkload::sized(40, 10, 200, 2, 9);
        let res = wl.run().unwrap();
        let a = wl.population_spikes(&res, 0);
        let b = wl.population_spikes(&res, 1);
        assert!(!a.is_empty() && !b.is_empty(), "{} / {}", a.len(), b.len());
        assert_eq!(a.len() + b.len(), res.raster.spikes.len());
        // Different seeds ⇒ different rasters.
        assert_ne!(a, b);
    }

    #[test]
    fn relaxed_matches_exact_raster() {
        let base = Net8020SweepWorkload::sized(40, 10, 200, 2, 9);
        let exact = base.run().unwrap();
        for quantum in [1u64, 4096, SchedMode::DEFAULT_QUANTUM] {
            let mut wl = base.clone();
            wl.cfg.system.sched = SchedMode::Relaxed {
                quantum,
                timing: TimingModel::Unit,
            };
            let relaxed = wl.run().unwrap();
            assert_eq!(
                sorted(&exact),
                sorted(&relaxed),
                "quantum {quantum} changed the raster"
            );
        }
    }

    #[test]
    fn relaxed_parallel_is_bit_identical_to_relaxed() {
        // The showcase workload for host-parallel scheduling: zero
        // cross-core traffic after the start-up barrier. At every tested
        // quantum and host-thread count the parallel scheduler must
        // reproduce the sequential relaxed run exactly — spike log in
        // order, relaxed clock, instret — and therefore also the exact
        // run's raster as a set.
        let base = Net8020SweepWorkload::sized(40, 10, 200, 2, 9);
        let exact = base.run().unwrap();
        for quantum in [7u64, SchedMode::DEFAULT_QUANTUM] {
            let mut rel = base.clone();
            rel.cfg.system.sched = SchedMode::Relaxed {
                quantum,
                timing: TimingModel::Unit,
            };
            let relaxed = rel.run().unwrap();
            for host_threads in [1u32, 2, 4] {
                let mut par = base.clone();
                par.cfg.system.sched = SchedMode::RelaxedParallel {
                    quantum,
                    host_threads,
                    timing: TimingModel::Unit,
                };
                let parallel = par.run().unwrap();
                let tag = format!("quantum {quantum} host_threads {host_threads}");
                assert_eq!(
                    relaxed.raster.spikes, parallel.raster.spikes,
                    "{tag}: spike order"
                );
                assert_eq!(relaxed.cycles, parallel.cycles, "{tag}: cycles");
                assert_eq!(relaxed.instret, parallel.instret, "{tag}: instret");
                assert_eq!(sorted(&exact), sorted(&parallel), "{tag}: raster vs exact");
            }
        }
    }

    #[test]
    fn partitioning_does_not_change_the_dynamics() {
        // The same block-diagonal image run on one core (whole network in
        // one chunk, dense rows include the zero cross-blocks) must produce
        // the identical raster the partitioned 2-core run does.
        let wl = Net8020SweepWorkload::sized(40, 10, 150, 2, 11);
        let two = wl.run().unwrap();
        let mut cfg1 = wl.cfg.clone();
        cfg1.n_cores = 1;
        cfg1.system.n_cores = 1;
        let one = run_workload(&cfg1, &wl.image, 8_000_000_000).unwrap();
        assert_eq!(sorted(&one), sorted(&two));
    }

    #[test]
    fn uncoupled_engine_barriers_once() {
        // Only the start-up barrier remains: generation 1 after the run.
        let wl = Net8020SweepWorkload::sized(40, 10, 50, 2, 3);
        let mut sys_cfg = wl.cfg.system.clone();
        sys_cfg.n_cores = 2;
        let prog = izhi_isa::Assembler::new()
            .assemble(&format!(
                ".equ DECAY_F32, {:#x}\n{}",
                ((1.0 - 0.5 / wl.cfg.tau as f64) as f32).to_bits(),
                crate::engine::build_asm(&wl.cfg)
            ))
            .unwrap();
        let mut sys = izhi_sim::System::new(sys_cfg);
        assert!(sys.load_program(&prog));
        wl.image.load_into(&mut sys, &wl.cfg);
        sys.run(8_000_000_000).unwrap();
        assert_eq!(sys.shared().dev.barrier_generation(), 1);
    }
}

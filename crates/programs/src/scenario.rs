//! The scenario registry: one place that names every guest workload the
//! repo can run, builds it from a small common parameter set, runs it
//! under any [`SchedMode`](izhi_sim::SchedMode), and verifies the result.
//!
//! The registry exists so that the CLI (`izhirisc scenario list|run`), the
//! perf baseline, the paper-table generators, the criterion benches and
//! the differential test suites all drive workloads through **one**
//! definition per scenario instead of six hand-rolled call sites. Adding a
//! scenario means adding one [`Scenario`] entry (plus, usually, a
//! constructor in the workload module it describes) — every consumer picks
//! it up automatically.
//!
//! Three paper scenarios ship ([`net8020`, `net8020_sweep`, `sudoku`]) and
//! five go beyond the paper: a larger pruned 80-20 population on the
//! sparse phase-A walk (`net8020_large`), a per-core *parameter-point*
//! sweep (`net8020_points` — each core simulates a different point of a
//! noise/weight-gain grid, not just a different seed), the seed-indexed
//! Table-VI Sudoku batch (`sudoku_batch`) whose battery fan-out reproduces
//! the paper's multi-puzzle run, and the §VI-C arithmetic ablations as
//! first-class battery rows (`net8020_basefixed`, `net8020_softfloat` —
//! the same 80-20 network on the base-ISA fixed-point and soft-float
//! kernels, so the quick battery exercises all three `Variant`s).

use std::any::Any;

use izhi_sim::SimError;
use izhi_snn::sudoku::{hard_corpus, SudokuGrid};

use crate::engine::{run_workload, EngineConfig, GuestImage, Variant, WorkloadResult};
use crate::net8020::Net8020Workload;
use crate::sudoku_prog::SudokuWorkload;
use crate::sweep::{Net8020SweepWorkload, SweepPoint};

/// A runnable guest workload instance, as the registry hands it out.
///
/// The scheduling mode lives in the engine configuration
/// (`cfg_mut().system.sched`), so one built instance can be run under
/// `Exact`, `Relaxed` or `RelaxedParallel` without rebuilding the image.
///
/// Since the run-template redesign a workload may be backed by a cached,
/// copy-on-write build snapshot ([`crate::template::RunInstance`]): the
/// default [`Workload::run`]/[`Workload::run_budgeted`] then skip the
/// assembly/upload/predecode work, and [`Workload::run_cold`] remains the
/// from-scratch reference path for differential tests.
pub trait Workload: Send + Sync {
    /// Engine configuration of the instance.
    fn cfg(&self) -> &EngineConfig;
    /// Mutable configuration access (scheduling mode, cache geometry, …).
    fn cfg_mut(&mut self) -> &mut EngineConfig;
    /// The prepared guest memory image.
    ///
    /// Treat the image as **read-only** once the workload is built:
    /// template-backed runs start from a snapshot taken at build time, so
    /// mutating the image in place is not guaranteed to affect the next
    /// [`Workload::run`] (it only reliably feeds [`Workload::run_cold`]).
    /// Build a new workload (or a new [`crate::template::RunInstance`] at
    /// a different seed) instead.
    fn image(&self) -> &GuestImage;
    /// Clone into a fresh boxed workload (all registry workloads are
    /// plain data; the template cache clones its prototype per
    /// instantiation).
    fn clone_box(&self) -> Box<dyn Workload>;
    /// Cycle budget before the run is declared hung.
    fn max_cycles(&self) -> u64 {
        8_000_000_000
    }
    /// Run under an explicit guest-cycle budget (the supervisor's entry
    /// point). The default is the cold build-and-run path;
    /// template-backed workloads override it with the snapshot path.
    fn run_budgeted(&self, max_cycles: u64) -> Result<WorkloadResult, SimError> {
        run_workload(self.cfg(), self.image(), max_cycles)
    }
    /// Run under the configured scheduling mode (template-backed when the
    /// workload carries a snapshot, cold otherwise).
    fn run(&self) -> Result<WorkloadResult, SimError> {
        self.run_budgeted(self.max_cycles())
    }
    /// Assemble, load and run from scratch, bypassing any template
    /// snapshot — the reference path differential tests compare against.
    fn run_cold(&self) -> Result<WorkloadResult, SimError> {
        run_workload(self.cfg(), self.image(), self.max_cycles())
    }
    /// Self-verification hook: scenario-specific invariants of a result
    /// (raster sanity for the 80-20 family, per-population activity for
    /// the sweeps, the solved-grid check for Sudoku). Cross-sched-mode
    /// raster identity is the *battery runner's* job — this hook judges a
    /// single run.
    fn verify(&self, res: &WorkloadResult) -> Result<(), String>;
    /// Downcast access for consumers that need the concrete workload
    /// (e.g. the Fig. 3 host-simulator arms need the generated network).
    fn as_any(&self) -> &dyn Any;
}

/// Common build parameters; `None` means the scenario's default. The
/// meaning of `n` is scenario-specific and documented in the scenario's
/// [`Scenario::schema`] (population size for the 80-20 family, per-core
/// population for sweeps, puzzle index for the Sudoku batch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ScenarioParams {
    /// Size/selector hint (see the scenario's schema).
    pub n: Option<usize>,
    /// Simulated 1 ms ticks.
    pub ticks: Option<u32>,
    /// Guest core count.
    pub n_cores: Option<u32>,
    /// Scenario seed (network/noise generation; sweep/batch index).
    pub seed: Option<u32>,
    /// Sudoku only: restore half the blanks from the classical solution
    /// so short tick budgets converge (defaults to the scenario's choice).
    pub ease: Option<bool>,
    /// Scale-out family only: number of population shards (= guest cores
    /// the network is split across). Defaults to `cores`; when both are
    /// given they must agree ([`Scenario::validate`]).
    pub shards: Option<u32>,
    /// `net8020_stream` only: injected stimulus events per tick.
    pub stim_rate: Option<u32>,
}

impl ScenarioParams {
    /// Builder-style override of `n`.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n = Some(n);
        self
    }

    /// Builder-style override of `ticks`.
    pub fn with_ticks(mut self, ticks: u32) -> Self {
        self.ticks = Some(ticks);
        self
    }

    /// Builder-style override of `n_cores`.
    pub fn with_cores(mut self, n_cores: u32) -> Self {
        self.n_cores = Some(n_cores);
        self
    }

    /// Builder-style override of `seed`.
    pub fn with_seed(mut self, seed: u32) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Builder-style override of `ease`.
    pub fn with_ease(mut self, ease: bool) -> Self {
        self.ease = Some(ease);
        self
    }

    /// Builder-style override of `shards`.
    pub fn with_shards(mut self, shards: u32) -> Self {
        self.shards = Some(shards);
        self
    }

    /// Builder-style override of `stim_rate`.
    pub fn with_stim_rate(mut self, stim_rate: u32) -> Self {
        self.stim_rate = Some(stim_rate);
        self
    }

    /// Layer `self` over `defaults` field by field: any `Some` in `self`
    /// wins, `None` falls through. This is the one merge rule shared by
    /// [`Scenario::build_quick`] and the template path.
    pub fn merged(self, defaults: ScenarioParams) -> ScenarioParams {
        ScenarioParams {
            n: self.n.or(defaults.n),
            ticks: self.ticks.or(defaults.ticks),
            n_cores: self.n_cores.or(defaults.n_cores),
            seed: self.seed.or(defaults.seed),
            ease: self.ease.or(defaults.ease),
            shards: self.shards.or(defaults.shards),
            stim_rate: self.stim_rate.or(defaults.stim_rate),
        }
    }
}

/// One named parameter of a scenario, for `scenario list` and docs.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// Parameter name as the CLI exposes it.
    pub name: &'static str,
    /// Rendered default value.
    pub default: &'static str,
    /// One-line description.
    pub help: &'static str,
}

/// A registered scenario: name, parameter schema, builder, battery seeds.
pub struct Scenario {
    /// Registry key (also the CLI name).
    pub name: &'static str,
    /// One-line description for `scenario list`.
    pub summary: &'static str,
    /// Parameter schema with per-scenario defaults.
    pub schema: &'static [ParamSpec],
    /// CI-sized parameters: small enough that a full battery across
    /// scheduling modes stays in test-suite time.
    pub quick: ScenarioParams,
    /// Default seed set for a battery fan-out of this scenario.
    pub battery_seeds: &'static [u32],
    build_fn: fn(&ScenarioParams) -> Box<dyn Workload>,
}

impl Scenario {
    /// Build an instance; `None` parameters take the scenario defaults.
    pub fn build(&self, params: &ScenarioParams) -> Box<dyn Workload> {
        (self.build_fn)(params)
    }

    /// Build at the CI-sized quick parameters, with `over` layered on top
    /// (any `Some` field in `over` wins).
    pub fn build_quick(&self, over: &ScenarioParams) -> Box<dyn Workload> {
        (self.build_fn)(&over.merged(self.quick))
    }

    /// The raw builder, for the template module (same crate).
    pub(crate) fn build_raw(&self, params: &ScenarioParams) -> Box<dyn Workload> {
        (self.build_fn)(params)
    }

    /// Check a parameter set for *inconsistent combinations* before any
    /// build work happens, so the CLI (and tests) get a one-line error
    /// instead of a guest trap or assembler panic deep inside the engine.
    /// Only explicitly-given (`Some`) fields are judged — `None` falls
    /// through to scenario defaults, which are valid by construction.
    pub fn validate(&self, p: &ScenarioParams) -> Result<(), String> {
        let scale_out = matches!(
            self.name,
            "net8020_sharded" | "net8020_stdp" | "net8020_stream"
        );
        let sudoku = self.name.starts_with("sudoku");
        let per_core_n = matches!(self.name, "net8020_sweep" | "net8020_points");
        if let Some(c) = p.n_cores {
            if c == 0 || c > 64 {
                return Err(format!("cores = {c} outside 1..=64"));
            }
            if !scale_out && c > 8 {
                return Err(format!(
                    "{}: cores = {c} exceeds the standard memory map's 8 core slots \
                     (the scale-out scenarios net8020_sharded/stdp/stream run the scaled map)",
                    self.name
                ));
            }
        }
        if let Some(t) = p.ticks {
            if t == 0 || t >= 65536 {
                return Err(format!(
                    "ticks = {t} outside 1..65536 (spike-log timestamps are 16-bit)"
                ));
            }
        }
        if let Some(n) = p.n {
            if sudoku {
                // `n` is a puzzle index there; any usize is taken mod 5.
            } else if n == 0 {
                return Err("n = 0: a population needs at least one neuron".into());
            } else if n > 65535 {
                return Err(format!(
                    "n = {n} exceeds 65535 (spike words carry 16-bit neuron ids)"
                ));
            }
        }
        if p.ease.is_some() && !sudoku {
            // Silently dropping the flag would let `--ease false` "pass"
            // on a scenario that never reads it.
            return Err(format!(
                "{}: `ease` only applies to the sudoku scenarios (sudoku, sudoku_batch)",
                self.name
            ));
        }
        if let Some(sh) = p.shards {
            if !scale_out {
                return Err(format!(
                    "{}: `shards` only applies to the scale-out scenarios \
                     (net8020_sharded, net8020_stdp, net8020_stream)",
                    self.name
                ));
            }
            if sh == 0 || sh > 64 {
                return Err(format!(
                    "shards = {sh} outside 1..=64 (spike tables scale to 64 core slots)"
                ));
            }
            if let Some(c) = p.n_cores {
                if sh > c {
                    return Err(format!(
                        "shards = {sh} exceeds cores = {c}: every shard runs on its own \
                         guest core, so shards <= cores"
                    ));
                }
            }
            if let Some(n) = p.n {
                if n < sh as usize {
                    return Err(format!(
                        "n = {n} neurons cannot fill {sh} shards (need n >= shards)"
                    ));
                }
            }
        }
        if let Some(r) = p.stim_rate {
            if self.name != "net8020_stream" {
                return Err(format!(
                    "{}: `stim_rate` only applies to net8020_stream",
                    self.name
                ));
            }
            if r == 0 || r > 4096 {
                return Err(format!("stim_rate = {r} outside 1..=4096 events per tick"));
            }
        }
        // Standard-map scenarios: the dense/fixed regions also bound the
        // total population and the per-core chunk.
        if !scale_out && !sudoku {
            let total = p.n.map(|n| {
                if per_core_n {
                    n * p.n_cores.unwrap_or(2) as usize
                } else {
                    n
                }
            });
            if let Some(total) = total {
                if total > 4096 {
                    return Err(format!(
                        "{}: {total} total neurons exceed the standard memory map's 4096 \
                         (use net8020_sharded for larger populations)",
                        self.name
                    ));
                }
            }
            if let (Some(n), Some(c)) = (p.n, p.n_cores) {
                let per = if per_core_n {
                    n
                } else {
                    n.div_ceil(c as usize)
                };
                if per > 1024 {
                    return Err(format!(
                        "{}: per-core chunk {per} exceeds the standard map's 1024-slot \
                         spike segment — use more cores or the scale-out scenarios",
                        self.name
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Every registered scenario, in listing order.
pub fn registry() -> &'static [Scenario] {
    &REGISTRY
}

/// Look a scenario up by name.
pub fn find(name: &str) -> Option<&'static Scenario> {
    REGISTRY.iter().find(|s| s.name == name)
}

/// Split a total 80-20 population into (n_exc, n_inh).
fn split_8020(n: usize) -> (usize, usize) {
    let n_exc = n * 4 / 5;
    (n_exc, n - n_exc)
}

static REGISTRY: [Scenario; 11] = [
    Scenario {
        name: "net8020",
        summary: "coupled 80-20 cortical network (paper Table V / Figs. 2-3)",
        schema: &[
            ParamSpec {
                name: "n",
                default: "1000",
                help: "total neurons (80 % excitatory)",
            },
            ParamSpec {
                name: "ticks",
                default: "1000",
                help: "simulated 1 ms steps",
            },
            ParamSpec {
                name: "cores",
                default: "2",
                help: "guest cores (contiguous chunks)",
            },
            ParamSpec {
                name: "seed",
                default: "5",
                help: "network + noise seed",
            },
        ],
        quick: ScenarioParams {
            n: Some(50),
            ticks: Some(150),
            n_cores: Some(2),
            seed: Some(5),
            ease: None,
            shards: None,
            stim_rate: None,
        },
        battery_seeds: &[5, 6],
        build_fn: build_net8020,
    },
    Scenario {
        name: "net8020_sweep",
        summary: "barrier-light seed sweep: one independent 80-20 population per core",
        schema: &[
            ParamSpec {
                name: "n",
                default: "200",
                help: "neurons per core population",
            },
            ParamSpec {
                name: "ticks",
                default: "300",
                help: "simulated 1 ms steps",
            },
            ParamSpec {
                name: "cores",
                default: "2",
                help: "populations (= cores)",
            },
            ParamSpec {
                name: "seed",
                default: "5",
                help: "base seed (population k uses seed+k)",
            },
        ],
        quick: ScenarioParams {
            n: Some(50),
            ticks: Some(150),
            n_cores: Some(2),
            seed: Some(9),
            ease: None,
            shards: None,
            stim_rate: None,
        },
        battery_seeds: &[5, 6],
        build_fn: build_net8020_sweep,
    },
    Scenario {
        name: "sudoku",
        summary: "729-neuron WTA Sudoku, canonical eased instance (paper Table VI)",
        schema: &[
            ParamSpec {
                name: "n",
                default: "0",
                help: "puzzle index into the hard corpus",
            },
            ParamSpec {
                name: "ticks",
                default: "2500",
                help: "simulated 1 ms steps (annealed search)",
            },
            ParamSpec {
                name: "cores",
                default: "2",
                help: "guest cores",
            },
            ParamSpec {
                name: "seed",
                default: "100",
                help: "noise seed",
            },
            ParamSpec {
                name: "ease",
                default: "true",
                help: "restore half the blanks so short budgets converge",
            },
        ],
        quick: ScenarioParams {
            n: Some(0),
            ticks: Some(120),
            n_cores: Some(2),
            seed: Some(100),
            ease: Some(true),
            shards: None,
            stim_rate: None,
        },
        battery_seeds: &[100],
        build_fn: build_sudoku,
    },
    Scenario {
        name: "net8020_large",
        summary: "beyond-paper: 1280-neuron pruned 80-20 population on the sparse phase-A walk",
        schema: &[
            ParamSpec {
                name: "n",
                default: "1280",
                help: "total neurons (pruned to ~15 % density)",
            },
            ParamSpec {
                name: "ticks",
                default: "300",
                help: "simulated 1 ms steps",
            },
            ParamSpec {
                name: "cores",
                default: "2",
                help: "guest cores (chunk must stay <= 1024)",
            },
            ParamSpec {
                name: "seed",
                default: "7",
                help: "network + noise seed",
            },
        ],
        quick: ScenarioParams {
            n: Some(160),
            ticks: Some(150),
            n_cores: Some(2),
            seed: Some(7),
            ease: None,
            shards: None,
            stim_rate: None,
        },
        battery_seeds: &[7, 8],
        build_fn: build_net8020_large,
    },
    Scenario {
        name: "net8020_points",
        summary:
            "beyond-paper: per-core parameter points (noise x weight gain grid, not just seeds)",
        schema: &[
            ParamSpec {
                name: "n",
                default: "200",
                help: "neurons per core population",
            },
            ParamSpec {
                name: "ticks",
                default: "300",
                help: "simulated 1 ms steps",
            },
            ParamSpec {
                name: "cores",
                default: "2",
                help: "parameter points (= cores)",
            },
            ParamSpec {
                name: "seed",
                default: "11",
                help: "shared network seed of every point",
            },
        ],
        quick: ScenarioParams {
            n: Some(50),
            ticks: Some(150),
            n_cores: Some(2),
            seed: Some(11),
            ease: None,
            shards: None,
            stim_rate: None,
        },
        battery_seeds: &[11, 12],
        build_fn: build_net8020_points,
    },
    Scenario {
        name: "net8020_basefixed",
        summary: "80-20 network on the base-ISA fixed-point kernel (§VI-C ablation, no custom ops)",
        schema: &[
            ParamSpec {
                name: "n",
                default: "1000",
                help: "total neurons (80 % excitatory)",
            },
            ParamSpec {
                name: "ticks",
                default: "300",
                help: "simulated 1 ms steps",
            },
            ParamSpec {
                name: "cores",
                default: "2",
                help: "guest cores (contiguous chunks)",
            },
            ParamSpec {
                name: "seed",
                default: "5",
                help: "network + noise seed",
            },
        ],
        quick: ScenarioParams {
            n: Some(50),
            ticks: Some(150),
            n_cores: Some(2),
            seed: Some(5),
            ease: None,
            shards: None,
            stim_rate: None,
        },
        battery_seeds: &[5],
        build_fn: build_net8020_basefixed,
    },
    Scenario {
        name: "net8020_softfloat",
        summary:
            "80-20 network on the soft-float kernel (§VI-C baseline, IEEE-754 via library calls)",
        schema: &[
            ParamSpec {
                name: "n",
                default: "200",
                help: "total neurons (80 % excitatory)",
            },
            ParamSpec {
                name: "ticks",
                default: "300",
                help: "simulated 1 ms steps (f32 noise mirror bounds n*ticks)",
            },
            ParamSpec {
                name: "cores",
                default: "2",
                help: "guest cores (contiguous chunks)",
            },
            ParamSpec {
                name: "seed",
                default: "5",
                help: "network + noise seed",
            },
        ],
        quick: ScenarioParams {
            n: Some(50),
            ticks: Some(120),
            n_cores: Some(2),
            seed: Some(5),
            ease: None,
            shards: None,
            stim_rate: None,
        },
        battery_seeds: &[5],
        build_fn: build_net8020_softfloat,
    },
    Scenario {
        name: "sudoku_batch",
        summary: "beyond-paper: seed-indexed Table-VI Sudoku batch (battery fans puzzles out)",
        schema: &[
            ParamSpec {
                name: "n",
                default: "seed % 5",
                help: "puzzle index into the hard corpus",
            },
            ParamSpec {
                name: "ticks",
                default: "2500",
                help: "simulated 1 ms steps per puzzle",
            },
            ParamSpec {
                name: "cores",
                default: "2",
                help: "guest cores",
            },
            ParamSpec {
                name: "seed",
                default: "0",
                help: "batch index: puzzle seed%5, noise seed 100+seed",
            },
            ParamSpec {
                name: "ease",
                default: "true",
                help: "restore half the blanks so short budgets converge",
            },
        ],
        quick: ScenarioParams {
            n: None,
            ticks: Some(120),
            n_cores: Some(2),
            seed: Some(0),
            ease: Some(true),
            shards: None,
            stim_rate: None,
        },
        battery_seeds: &[0, 1, 2, 3, 4],
        build_fn: build_sudoku_batch,
    },
    Scenario {
        name: "net8020_sharded",
        summary:
            "beyond-paper scale-out: CSR-native sparse 80-20 population sharded across 8-64 cores",
        schema: &[
            ParamSpec {
                name: "n",
                default: "10240",
                help: "total neurons (80 % excitatory, generated directly in CSR)",
            },
            ParamSpec {
                name: "ticks",
                default: "200",
                help: "simulated 1 ms steps",
            },
            ParamSpec {
                name: "cores",
                default: "16",
                help: "guest cores on the scaled memory map (up to 64)",
            },
            ParamSpec {
                name: "seed",
                default: "17",
                help: "network + noise seed",
            },
            ParamSpec {
                name: "shards",
                default: "cores",
                help: "population shards (one per core; must be <= cores)",
            },
        ],
        quick: ScenarioParams {
            n: Some(512),
            ticks: Some(100),
            n_cores: Some(16),
            seed: Some(17),
            ease: None,
            shards: None,
            stim_rate: None,
        },
        battery_seeds: &[17, 18],
        build_fn: build_net8020_sharded,
    },
    Scenario {
        name: "net8020_stdp",
        summary:
            "beyond-paper: sparse 80-20 population with delivery-time STDP (weights evolve in-run)",
        schema: &[
            ParamSpec {
                name: "n",
                default: "1024",
                help: "total neurons (80 % excitatory, generated directly in CSR)",
            },
            ParamSpec {
                name: "ticks",
                default: "400",
                help: "simulated 1 ms steps",
            },
            ParamSpec {
                name: "cores",
                default: "4",
                help: "guest cores (scaled map beyond 8)",
            },
            ParamSpec {
                name: "seed",
                default: "21",
                help: "network + noise seed",
            },
            ParamSpec {
                name: "shards",
                default: "cores",
                help: "population shards (one per core; must be <= cores)",
            },
        ],
        quick: ScenarioParams {
            n: Some(160),
            ticks: Some(150),
            n_cores: Some(2),
            seed: Some(21),
            ease: None,
            shards: None,
            stim_rate: None,
        },
        battery_seeds: &[21, 22],
        build_fn: build_net8020_stdp,
    },
    Scenario {
        name: "net8020_stream",
        summary:
            "beyond-paper: noiseless sparse 80-20 population driven by a streamed MMIO stimulus",
        schema: &[
            ParamSpec {
                name: "n",
                default: "400",
                help: "total neurons (80 % excitatory, generated directly in CSR)",
            },
            ParamSpec {
                name: "ticks",
                default: "400",
                help: "simulated 1 ms steps",
            },
            ParamSpec {
                name: "cores",
                default: "4",
                help: "guest cores (scaled map beyond 8)",
            },
            ParamSpec {
                name: "seed",
                default: "31",
                help: "network seed; stimulus schedule derives from seed ^ 0x57D1",
            },
            ParamSpec {
                name: "shards",
                default: "cores",
                help: "population shards (one per core; must be <= cores)",
            },
            ParamSpec {
                name: "stim_rate",
                default: "8",
                help: "injected stimulus events per tick",
            },
        ],
        quick: ScenarioParams {
            n: Some(80),
            ticks: Some(150),
            n_cores: Some(2),
            seed: Some(31),
            ease: None,
            shards: None,
            stim_rate: Some(4),
        },
        battery_seeds: &[31, 32],
        build_fn: build_net8020_stream,
    },
];

fn build_net8020(p: &ScenarioParams) -> Box<dyn Workload> {
    let (n_exc, n_inh) = split_8020(p.n.unwrap_or(1000));
    Box::new(Net8020Workload::sized(
        n_exc,
        n_inh,
        p.ticks.unwrap_or(1000),
        p.n_cores.unwrap_or(2),
        p.seed.unwrap_or(5),
        Variant::Npu,
    ))
}

fn build_net8020_sweep(p: &ScenarioParams) -> Box<dyn Workload> {
    let (n_exc, n_inh) = split_8020(p.n.unwrap_or(200));
    Box::new(Net8020SweepWorkload::sized(
        n_exc,
        n_inh,
        p.ticks.unwrap_or(300),
        p.n_cores.unwrap_or(2),
        p.seed.unwrap_or(5),
    ))
}

fn build_net8020_basefixed(p: &ScenarioParams) -> Box<dyn Workload> {
    let (n_exc, n_inh) = split_8020(p.n.unwrap_or(1000));
    Box::new(Net8020Workload::sized(
        n_exc,
        n_inh,
        p.ticks.unwrap_or(300),
        p.n_cores.unwrap_or(2),
        p.seed.unwrap_or(5),
        Variant::BaseFixed,
    ))
}

fn build_net8020_softfloat(p: &ScenarioParams) -> Box<dyn Workload> {
    // The f32 noise mirror lives in a fixed SDRAM window, so the default
    // scale is kept modest (see the schema); `run_workload` asserts the
    // window bound for custom parameters.
    let (n_exc, n_inh) = split_8020(p.n.unwrap_or(200));
    Box::new(Net8020Workload::sized(
        n_exc,
        n_inh,
        p.ticks.unwrap_or(300),
        p.n_cores.unwrap_or(2),
        p.seed.unwrap_or(5),
        Variant::SoftFloat,
    ))
}

fn build_net8020_large(p: &ScenarioParams) -> Box<dyn Workload> {
    let (n_exc, n_inh) = split_8020(p.n.unwrap_or(1280));
    Box::new(Net8020Workload::sized_sparse(
        n_exc,
        n_inh,
        p.ticks.unwrap_or(300),
        p.n_cores.unwrap_or(2),
        p.seed.unwrap_or(7),
        0.15,
    ))
}

fn build_net8020_points(p: &ScenarioParams) -> Box<dyn Workload> {
    let (n_exc, n_inh) = split_8020(p.n.unwrap_or(200));
    let n_cores = p.n_cores.unwrap_or(2);
    let seed = p.seed.unwrap_or(11);
    // A small grid through (thalamic-noise gain, excitatory-weight gain):
    // every core simulates one parameter point of the same seeded network.
    let points: Vec<SweepPoint> = (0..n_cores)
        .map(|k| SweepPoint {
            seed,
            noise_gain: 0.8 + 0.2 * k as f64,
            weight_gain: 1.1 - 0.1 * k as f64,
        })
        .collect();
    Box::new(Net8020SweepWorkload::with_points(
        n_exc,
        n_inh,
        p.ticks.unwrap_or(300),
        &points,
    ))
}

/// Ease a puzzle by restoring half its blanks from the classical solution
/// (the quick-scale Table VI flow used across the repo).
pub fn eased(mut puzzle: SudokuGrid) -> SudokuGrid {
    let sol = puzzle.solve().expect("classical solver");
    for i in (0..81).step_by(2) {
        if puzzle.0[i] == 0 {
            puzzle.0[i] = sol.0[i];
        }
    }
    puzzle
}

fn sudoku_instance(
    puzzle_idx: usize,
    ease: bool,
    ticks: u32,
    n_cores: u32,
    seed: u32,
) -> SudokuWorkload {
    let mut puzzle = hard_corpus(5)[puzzle_idx % 5];
    if ease {
        puzzle = eased(puzzle);
    }
    SudokuWorkload::new(puzzle, ticks, n_cores, seed)
}

fn build_sudoku(p: &ScenarioParams) -> Box<dyn Workload> {
    Box::new(sudoku_instance(
        p.n.unwrap_or(0),
        p.ease.unwrap_or(true),
        p.ticks.unwrap_or(2500),
        p.n_cores.unwrap_or(2),
        p.seed.unwrap_or(100),
    ))
}

fn build_sudoku_batch(p: &ScenarioParams) -> Box<dyn Workload> {
    let seed = p.seed.unwrap_or(0);
    Box::new(sudoku_instance(
        p.n.unwrap_or(seed as usize % 5),
        p.ease.unwrap_or(true),
        p.ticks.unwrap_or(2500),
        p.n_cores.unwrap_or(2),
        100 + seed,
    ))
}

fn build_net8020_sharded(p: &ScenarioParams) -> Box<dyn Workload> {
    let cores = p.shards.or(p.n_cores).unwrap_or(16);
    let (n_exc, n_inh) = split_8020(p.n.unwrap_or(10240));
    Box::new(Net8020Workload::sharded(
        n_exc,
        n_inh,
        0.02,
        p.ticks.unwrap_or(200),
        cores,
        p.seed.unwrap_or(17),
    ))
}

fn build_net8020_stdp(p: &ScenarioParams) -> Box<dyn Workload> {
    let cores = p.shards.or(p.n_cores).unwrap_or(4);
    let (n_exc, n_inh) = split_8020(p.n.unwrap_or(1024));
    Box::new(Net8020Workload::stdp(
        n_exc,
        n_inh,
        0.1,
        p.ticks.unwrap_or(400),
        cores,
        p.seed.unwrap_or(21),
    ))
}

fn build_net8020_stream(p: &ScenarioParams) -> Box<dyn Workload> {
    let cores = p.shards.or(p.n_cores).unwrap_or(4);
    let (n_exc, n_inh) = split_8020(p.n.unwrap_or(400));
    Box::new(Net8020Workload::stream(
        n_exc,
        n_inh,
        0.1,
        p.ticks.unwrap_or(400),
        cores,
        p.seed.unwrap_or(31),
        p.stim_rate.unwrap_or(8),
    ))
}

/// Raster bounds check shared by every verification: spikes exist and
/// their (tick, neuron) coordinates are inside the run's grid.
fn verify_raster_bounds(cfg: &EngineConfig, res: &WorkloadResult) -> Result<(), String> {
    if res.raster.spikes.is_empty() {
        return Err("raster is empty".into());
    }
    for &(t, n) in &res.raster.spikes {
        if n as usize >= cfg.n || t >= cfg.ticks {
            return Err(format!("spike ({t}, {n}) outside {}x{}", cfg.ticks, cfg.n));
        }
    }
    Ok(())
}

/// Shared raster sanity for the 80-20 family: spikes exist, indices are in
/// range, and the mean rate is in a (very wide) cortical band.
fn verify_raster(cfg: &EngineConfig, res: &WorkloadResult) -> Result<(), String> {
    verify_raster_bounds(cfg, res)?;
    let rate = res.raster.mean_rate_hz();
    if !(0.05..=500.0).contains(&rate) {
        return Err(format!("mean rate {rate:.2} Hz outside the plausible band"));
    }
    Ok(())
}

impl Workload for Net8020Workload {
    fn cfg(&self) -> &EngineConfig {
        &self.cfg
    }

    fn cfg_mut(&mut self) -> &mut EngineConfig {
        &mut self.cfg
    }

    fn image(&self) -> &GuestImage {
        &self.image
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn verify(&self, res: &WorkloadResult) -> Result<(), String> {
        if self.stream {
            // All drive is injected stimulus: the cortical-rate band does
            // not apply, but the raster must still be sane.
            verify_raster_bounds(&self.cfg, res)?;
        } else {
            verify_raster(&self.cfg, res)?;
        }
        if self.cfg.plastic {
            let h = res
                .weight_hash
                .ok_or("plastic run reported no weight hash")?;
            if Some(h) == self.initial_weight_hash {
                return Err(format!(
                    "weights never evolved: final hash {h:#018x} equals the initial hash"
                ));
            }
        }
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Workload for Net8020SweepWorkload {
    fn cfg(&self) -> &EngineConfig {
        &self.cfg
    }

    fn cfg_mut(&mut self) -> &mut EngineConfig {
        &mut self.cfg
    }

    fn image(&self) -> &GuestImage {
        &self.image
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn verify(&self, res: &WorkloadResult) -> Result<(), String> {
        verify_raster(&self.cfg, res)?;
        // Block-diagonal correctness: every population must be active.
        for k in 0..self.subnets.len() {
            if self.population_spikes(res, k).is_empty() {
                return Err(format!("population {k} produced no spikes"));
            }
        }
        Ok(())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

impl Workload for SudokuWorkload {
    fn cfg(&self) -> &EngineConfig {
        &self.cfg
    }

    fn cfg_mut(&mut self) -> &mut EngineConfig {
        &mut self.cfg
    }

    fn image(&self) -> &GuestImage {
        &self.image
    }

    fn clone_box(&self) -> Box<dyn Workload> {
        Box::new(self.clone())
    }

    fn max_cycles(&self) -> u64 {
        2_000_000_000_000
    }

    fn verify(&self, res: &WorkloadResult) -> Result<(), String> {
        verify_raster(&self.cfg, res)?;
        let (solution, _) = self.decode(res, 50);
        match solution {
            Some(grid) if !grid.extends(&self.puzzle) => {
                Err("decoded grid contradicts the puzzle's givens".into())
            }
            // The annealed WTA search needs a real tick budget to converge;
            // below it, an active raster is all a single run can promise.
            None if self.cfg.ticks >= 2000 => {
                Err(format!("did not converge in {} ticks", self.cfg.ticks))
            }
            _ => Ok(()),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_complete() {
        let names: Vec<_> = registry().iter().map(|s| s.name).collect();
        assert!(names.len() >= 6, "registry shrank: {names:?}");
        for (i, a) in names.iter().enumerate() {
            assert!(!names[i + 1..].contains(a), "duplicate scenario {a}");
        }
        for paper in ["net8020", "net8020_sweep", "sudoku"] {
            assert!(names.contains(&paper), "paper scenario {paper} missing");
        }
        for s in registry() {
            assert!(!s.schema.is_empty(), "{}: empty schema", s.name);
            assert!(!s.battery_seeds.is_empty(), "{}: no battery seeds", s.name);
        }
    }

    #[test]
    fn merged_layers_overrides_over_defaults() {
        let defaults = ScenarioParams::default()
            .with_n(100)
            .with_ticks(200)
            .with_cores(2)
            .with_seed(5)
            .with_ease(true);
        let over = ScenarioParams::default().with_ticks(50).with_ease(false);
        let m = over.merged(defaults);
        assert_eq!(m.n, Some(100), "None falls through to the default");
        assert_eq!(m.ticks, Some(50), "Some overrides");
        assert_eq!(m.n_cores, Some(2));
        assert_eq!(m.seed, Some(5));
        assert_eq!(m.ease, Some(false), "with_ease(false) is a real override");
        // Merging with empty defaults is the identity.
        assert_eq!(m.merged(ScenarioParams::default()), m);
    }

    #[test]
    fn params_override_defaults() {
        let s = find("net8020").unwrap();
        let wl = s.build(
            &ScenarioParams::default()
                .with_n(50)
                .with_ticks(40)
                .with_cores(1)
                .with_seed(3),
        );
        assert_eq!(wl.cfg().n, 50);
        assert_eq!(wl.cfg().ticks, 40);
        assert_eq!(wl.cfg().n_cores, 1);
    }

    #[test]
    fn quick_build_runs_and_verifies() {
        for name in ["net8020", "net8020_sweep", "net8020_points"] {
            let s = find(name).unwrap();
            let wl = s.build_quick(&ScenarioParams::default());
            let res = wl.run().unwrap_or_else(|e| panic!("{name}: {e}"));
            wl.verify(&res).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn registry_covers_every_arithmetic_variant() {
        // The mixed-variant battery rows: the same 80-20 network under
        // each kernel arithmetic, one registry entry per variant.
        for (name, variant) in [
            ("net8020", Variant::Npu),
            ("net8020_basefixed", Variant::BaseFixed),
            ("net8020_softfloat", Variant::SoftFloat),
        ] {
            let s = find(name).unwrap_or_else(|| panic!("{name} missing"));
            let wl = s.build_quick(&ScenarioParams::default());
            assert_eq!(wl.cfg().variant, variant, "{name}");
            let res = wl.run().unwrap_or_else(|e| panic!("{name}: {e}"));
            wl.verify(&res).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn large_scenario_uses_the_sparse_walk() {
        let s = find("net8020_large").unwrap();
        let wl = s.build_quick(&ScenarioParams::default());
        assert!(wl.cfg().sparse, "large scenario must use the CSR walk");
        let res = wl.run().unwrap();
        wl.verify(&res).unwrap();
    }

    #[test]
    fn point_sweep_points_differ_per_core() {
        let s = find("net8020_points").unwrap();
        let wl = s.build_quick(&ScenarioParams::default());
        let sweep = wl
            .as_any()
            .downcast_ref::<Net8020SweepWorkload>()
            .expect("points scenario wraps the sweep workload");
        let res = wl.run().unwrap();
        let a = sweep.population_spikes(&res, 0);
        let b = sweep.population_spikes(&res, 1);
        // Same seed, different parameter points => different dynamics.
        assert_ne!(a, b, "parameter points did not change the dynamics");
    }

    #[test]
    fn scale_out_scenarios_run_and_verify() {
        for name in ["net8020_sharded", "net8020_stdp", "net8020_stream"] {
            let s = find(name).unwrap_or_else(|| panic!("{name} missing"));
            let wl = s.build_quick(&ScenarioParams::default());
            assert!(wl.cfg().sparse, "{name}: scale-out builds are CSR-native");
            let res = wl.run().unwrap_or_else(|e| panic!("{name}: {e}"));
            wl.verify(&res).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn sharded_quick_crosses_the_standard_map() {
        let s = find("net8020_sharded").unwrap();
        let wl = s.build_quick(&ScenarioParams::default());
        assert!(
            wl.cfg().n_cores >= 16,
            "quick shape must exercise the scaled memory map (got {} cores)",
            wl.cfg().n_cores
        );
    }

    #[test]
    fn stdp_scenario_reports_an_evolved_weight_hash() {
        let s = find("net8020_stdp").unwrap();
        let wl = s.build_quick(&ScenarioParams::default());
        assert!(wl.cfg().plastic);
        let initial = wl
            .as_any()
            .downcast_ref::<Net8020Workload>()
            .unwrap()
            .initial_weight_hash
            .expect("plastic build records the initial hash");
        let res = wl.run().unwrap();
        let h = res.weight_hash.expect("plastic run reports a weight hash");
        assert_ne!(h, initial, "weights must evolve during the run");
        wl.verify(&res).unwrap();
    }

    #[test]
    fn stream_scenario_spikes_without_noise_or_bias() {
        let s = find("net8020_stream").unwrap();
        let wl = s.build_quick(&ScenarioParams::default());
        assert!(wl.cfg().stim);
        assert!(!wl.cfg().system.stim.is_empty(), "stimulus plan installed");
        let res = wl.run().unwrap();
        assert!(
            !res.raster.spikes.is_empty(),
            "injected stimulus must drive spikes"
        );
        wl.verify(&res).unwrap();
    }

    #[test]
    fn validate_rejects_inconsistent_combinations() {
        let sharded = find("net8020_sharded").unwrap();
        // shards > cores: each shard needs its own guest core.
        let err = sharded
            .validate(&ScenarioParams::default().with_shards(16).with_cores(8))
            .unwrap_err();
        assert!(err.contains("shards"), "unclear error: {err}");
        // shards beyond the spike-table core slots.
        assert!(sharded
            .validate(&ScenarioParams::default().with_shards(65))
            .is_err());
        // Too few neurons to fill the shards.
        assert!(sharded
            .validate(&ScenarioParams::default().with_n(4).with_shards(8))
            .is_err());
        // stim_rate on a non-stream scenario.
        assert!(sharded
            .validate(&ScenarioParams::default().with_stim_rate(4))
            .is_err());
        // shards on a non-scale-out scenario.
        let dense = find("net8020").unwrap();
        assert!(dense
            .validate(&ScenarioParams::default().with_shards(4))
            .is_err());
        // ease on a non-sudoku scenario: either polarity is rejected (it
        // would otherwise be dropped silently), and the error names the
        // scenarios it does apply to.
        let err = dense
            .validate(&ScenarioParams::default().with_ease(false))
            .unwrap_err();
        assert!(err.contains("sudoku"), "unclear error: {err}");
        assert!(dense
            .validate(&ScenarioParams::default().with_ease(true))
            .is_err());
        assert!(sharded
            .validate(&ScenarioParams::default().with_ease(true))
            .is_err());
        for name in ["sudoku", "sudoku_batch"] {
            let s = find(name).unwrap();
            s.validate(&ScenarioParams::default().with_ease(false))
                .unwrap();
            s.validate(&ScenarioParams::default().with_ease(true))
                .unwrap();
        }
        // Standard-map scenarios cannot cross the 8-core / 4096-neuron /
        // 1024-chunk bounds.
        let err = dense
            .validate(&ScenarioParams::default().with_cores(16))
            .unwrap_err();
        assert!(err.contains("standard memory map"), "unclear error: {err}");
        assert!(dense
            .validate(&ScenarioParams::default().with_n(10240))
            .is_err());
        assert!(dense
            .validate(&ScenarioParams::default().with_n(4000).with_cores(2))
            .is_err());
        // Generic bounds.
        assert!(dense
            .validate(&ScenarioParams::default().with_ticks(0))
            .is_err());
        assert!(dense
            .validate(&ScenarioParams::default().with_ticks(70000))
            .is_err());
        assert!(dense
            .validate(&ScenarioParams::default().with_cores(0))
            .is_err());
    }

    #[test]
    fn validate_accepts_every_quick_and_default_shape() {
        for s in registry() {
            s.validate(&s.quick)
                .unwrap_or_else(|e| panic!("{}: quick shape rejected: {e}", s.name));
            s.validate(&ScenarioParams::default())
                .unwrap_or_else(|e| panic!("{}: defaults rejected: {e}", s.name));
        }
        let sharded = find("net8020_sharded").unwrap();
        sharded
            .validate(
                &ScenarioParams::default()
                    .with_n(10240)
                    .with_cores(64)
                    .with_shards(64),
            )
            .unwrap();
    }

    #[test]
    fn sudoku_verify_checks_the_grid() {
        let s = find("sudoku").unwrap();
        let wl = s.build_quick(&ScenarioParams::default());
        let res = wl.run().unwrap();
        // Quick budget: no convergence required, but the raster must be
        // sane and any decoded grid consistent.
        wl.verify(&res).unwrap();
    }
}

//! Guest memory-map constants shared between the assembly generator and
//! the host-side image builder.
//!
//! The split mirrors the paper's DE10 system (§VI): hot per-neuron state in
//! on-chip memory, bulk tables (weights, precomputed thalamic noise) in
//! SDRAM behind the D-cache, code in SDRAM behind the I-cache.

/// Scratchpad base (on-chip, single-cycle).
pub const SCRATCH: u32 = 0x1000_0000;

/// VU words (packed v/u, 4 B per neuron) — scratchpad.
pub const VU: u32 = SCRATCH;
/// Synaptic currents (Q15.16, 4 B per neuron) — scratchpad.
pub const ISYN: u32 = SCRATCH + 0x4000;
/// Quantised parameter table (rs1, rs2 word pair per neuron) — scratchpad.
pub const PARAMS: u32 = SCRATCH + 0x8000;
/// Spike lists: two parities × up to 8 cores × 1024 u16 entries.
pub const SPIKE_LISTS: u32 = SCRATCH + 0x1_0000;
/// Bytes per core segment in a spike list.
pub const SPIKE_SEG: u32 = 0x800;
/// Per-parity stride (8 core segments).
pub const SPIKE_PARITY_STRIDE: u32 = SPIKE_SEG * 8;
/// Spike counts: two parities × 8 cores × u32.
pub const SPIKE_COUNTS: u32 = SCRATCH + 0x1_8000;
/// Soft-float state arrays (f32 v, u, isyn) — scratchpad.
pub const F32_V: u32 = SCRATCH + 0x2_0000;
/// Soft-float u array.
pub const F32_U: u32 = SCRATCH + 0x2_4000;
/// Soft-float isyn array.
pub const F32_ISYN: u32 = SCRATCH + 0x2_8000;
/// Soft-float parameter table (a, b, c, d as f32, 16 B per neuron).
pub const F32_PARAMS: u32 = SCRATCH + 0x2_C000;

/// Weight matrix, row-major by presynaptic neuron, i16 Q7.8 — SDRAM.
pub const WEIGHTS: u32 = 0x0020_0000;
/// Weight matrix as f32 (soft-float variant) — SDRAM.
pub const WEIGHTS_F32: u32 = 0x0060_0000;
/// Thalamic-noise table `[tick][neuron]`, i16 Q7.8 — SDRAM.
pub const NOISE: u32 = 0x00A0_0000;
/// Thalamic-noise table as f32 (soft-float variant) — SDRAM.
pub const NOISE_F32: u32 = 0x00D0_0000;
/// Sparse-connectivity row pointers, one `(N+1)`-entry u32 table per core
/// (`ROWPTR + core*(N+1)*4 + j*4`) — SDRAM.
pub const ROWPTR: u32 = 0x00F8_0000;
/// Sparse edges `(target u16, weight i16 Q7.8)` grouped by (core, pre) —
/// SDRAM.
pub const EDGES: u32 = 0x0100_0000;
/// f32 edge weights parallel to [`EDGES`] (soft-float variant) — SDRAM.
pub const EDGES_F32: u32 = 0x0180_0000;

/// Number of noise-table rows that fit the fixed-point window; the guest
/// cycles the table with `t mod NOISE_TICKS`, so long runs reuse the noise
/// stream periodically.
pub fn noise_period(n: usize, ticks: u32) -> u32 {
    let cap = (NOISE_F32 - NOISE) / (2 * n as u32);
    ticks.min(cap).max(1)
}

/// Same for the f32 mirror used by the soft-float variant (smaller window).
pub fn noise_period_f32(n: usize, ticks: u32) -> u32 {
    let cap = (ROWPTR - NOISE_F32) / (4 * n as u32);
    ticks.min(cap).max(1)
}

/// MMIO block base and registers (mirrors `izhi_sim::mem::layout`).
pub const MMIO: u32 = 0xF000_0000;
/// Core-id register.
pub const MMIO_COREID: u32 = MMIO + 0x04;
/// Barrier register.
pub const MMIO_BARRIER: u32 = MMIO + 0x10;
/// Halt register.
pub const MMIO_HALT: u32 = MMIO + 0x18;
/// Spike-log FIFO.
pub const MMIO_SPIKE_LOG: u32 = MMIO + 0x1C;
/// ROI control.
pub const MMIO_ROI: u32 = MMIO + 0x24;
/// Stimulus-injection port (write tick, read events until `-1`).
pub const MMIO_STIM: u32 = MMIO + 0x2C;

/// Scratchpad top for the standard layout (stacks grow down from here).
pub const STACK_TOP: u32 = SCRATCH + 0x4_0000;

fn align4k(x: u32) -> u32 {
    (x + 0xFFF) & !0xFFF
}

/// A resolved guest memory map for one engine shape.
///
/// [`Layout::standard`] reproduces the historical constants above exactly
/// — every pre-existing scenario keeps byte-identical tables and code.
/// [`Layout::for_shape`] switches to a recomputed **scaled** map when the
/// shape outgrows the standard one (more than 4096 neurons, more than 8
/// cores, or more than 1024 neurons per core): scratch regions are
/// restacked for the actual `n`, the spike list/count tables grow to a
/// power-of-two core-slot count up to 64, and the SDRAM map drops the
/// dense weight matrix (scaled shapes are sparse-only — a dense 10k²
/// table would not fit any plausible SDRAM) in favour of a large CSR
/// edge region. All strides stay powers of two so the engine's shift-based
/// addressing keeps working; the `*_shift` fields feed the generated
/// assembly directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Core slots in the spike list/count tables (power of two, ≥ cores).
    pub core_slots: u32,
    /// VU array base.
    pub vu: u32,
    /// Synaptic-current array base.
    pub isyn: u32,
    /// Quantised parameter table base.
    pub params: u32,
    /// Spike-list table base (two parities × `core_slots` segments).
    pub spike_lists: u32,
    /// Bytes per core segment in a spike list (power of two).
    pub spike_seg: u32,
    /// `log2(spike_seg)` — segment addressing shift in the assembly.
    pub spike_seg_shift: u32,
    /// Per-parity spike-list stride (`spike_seg * core_slots`).
    pub spike_parity_stride: u32,
    /// Spike-count table base (two parities × `core_slots` u32 counts).
    pub spike_counts: u32,
    /// `log2(core_slots * 4)` — count-table parity shift in the assembly.
    pub count_parity_shift: u32,
    /// Last-spike-tick array base (STDP; one u32 per neuron, `-1` =
    /// never). In the standard layout this overlays the f32 V region —
    /// plasticity is fixed-point-only, so the soft-float arrays are free.
    pub last_spike: u32,
    /// Soft-float f32 state array bases (meaningless for scaled layouts,
    /// which are fixed-point-only; they then all point past `last_spike`).
    pub f32_v: u32,
    /// Soft-float u array.
    pub f32_u: u32,
    /// Soft-float isyn array.
    pub f32_isyn: u32,
    /// Soft-float parameter table.
    pub f32_params: u32,
    /// Scratchpad top: per-core stacks grow down from here.
    pub stack_top: u32,
    /// `log2(bytes per core stack)`.
    pub stack_shift: u32,
    /// Scratchpad bytes this layout needs.
    pub scratch_size: u32,
    /// Dense weight matrix base (scaled layouts: zero-size region).
    pub weights: u32,
    /// Dense f32 weight matrix base.
    pub weights_f32: u32,
    /// Thalamic-noise table base.
    pub noise: u32,
    /// f32 noise mirror base (also the end of the fixed-point window).
    pub noise_f32: u32,
    /// Sparse row-pointer table base.
    pub rowptr: u32,
    /// Sparse edge-word region base.
    pub edges: u32,
    /// f32 edge-weight mirror base (also the fixed-point edge cap).
    pub edges_f32: u32,
    /// SDRAM bytes this layout needs (0 = fits any configured size).
    pub sdram_size: u32,
}

impl Layout {
    /// The historical fixed memory map (shapes up to 4096 neurons, 8
    /// cores, 1024 neurons per core).
    pub fn standard() -> Self {
        Layout {
            core_slots: 8,
            vu: VU,
            isyn: ISYN,
            params: PARAMS,
            spike_lists: SPIKE_LISTS,
            spike_seg: SPIKE_SEG,
            spike_seg_shift: SPIKE_SEG.trailing_zeros(),
            spike_parity_stride: SPIKE_PARITY_STRIDE,
            spike_counts: SPIKE_COUNTS,
            count_parity_shift: 5, // 8 slots × 4 B
            last_spike: F32_V,
            f32_v: F32_V,
            f32_u: F32_U,
            f32_isyn: F32_ISYN,
            f32_params: F32_PARAMS,
            stack_top: STACK_TOP,
            stack_shift: 13, // 8 KiB per core
            scratch_size: STACK_TOP - SCRATCH,
            weights: WEIGHTS,
            weights_f32: WEIGHTS_F32,
            noise: NOISE,
            noise_f32: NOISE_F32,
            rowptr: ROWPTR,
            edges: EDGES,
            edges_f32: EDGES_F32,
            sdram_size: 0,
        }
    }

    /// Whether a shape fits the standard map.
    pub fn fits_standard(n: usize, n_cores: u32, chunk: usize) -> bool {
        n <= 4096 && n_cores <= 8 && chunk <= 1024
    }

    /// Resolve the layout for a shape: standard when it fits, scaled
    /// (sparse-only, fixed-point-only) otherwise.
    pub fn for_shape(n: usize, ticks: u32, n_cores: u32, chunk: usize) -> Self {
        if Self::fits_standard(n, n_cores, chunk) {
            return Self::standard();
        }
        assert!(n <= 65535, "neuron indices are 16-bit ({n} neurons)");
        assert!(n_cores <= 64, "spike tables scale to at most 64 cores");
        let core_slots = n_cores.next_power_of_two();
        let n32 = n as u32;
        // Scratch: restack the hot per-neuron regions for the actual n.
        let vu = SCRATCH;
        let isyn = vu + align4k(4 * n32);
        let params = isyn + align4k(4 * n32);
        let spike_lists = params + align4k(8 * n32);
        let spike_seg = (2 * chunk as u32).next_power_of_two().max(SPIKE_SEG);
        let spike_parity_stride = spike_seg * core_slots;
        let spike_counts = spike_lists + 2 * spike_parity_stride;
        let last_spike = spike_counts + align4k(2 * core_slots * 4);
        let regions_end = last_spike + align4k(4 * n32);
        // Fixed-point-only: the f32 arrays collapse to zero-size markers.
        let stack_shift = 12; // 4 KiB per core — the kernels barely stack
        let scratch_size = {
            let want = regions_end - SCRATCH + (core_slots << stack_shift);
            (want + 0xFFFF) & !0xFFFF
        };
        // SDRAM: no dense weights; a large CSR region instead. The noise
        // window covers up to 4096 distinct rows (the guest hashes the
        // tick into the window, so longer runs reuse rows aperiodically).
        let noise = WEIGHTS;
        let noise_rows = ticks.clamp(1, 4096);
        let noise_f32 = noise + align4k(2 * n32 * noise_rows);
        let rowptr = noise_f32;
        let edges = rowptr + align4k(n_cores * (n32 + 1) * 4);
        Layout {
            core_slots,
            vu,
            isyn,
            params,
            spike_lists,
            spike_seg,
            spike_seg_shift: spike_seg.trailing_zeros(),
            spike_parity_stride,
            spike_counts,
            count_parity_shift: (core_slots * 4).trailing_zeros(),
            last_spike,
            f32_v: regions_end,
            f32_u: regions_end,
            f32_isyn: regions_end,
            f32_params: regions_end,
            stack_top: SCRATCH + scratch_size,
            stack_shift,
            scratch_size,
            weights: noise,     // zero-size: dense weights are not laid out
            weights_f32: noise, // zero-size
            noise,
            noise_f32,
            rowptr,
            edges,
            edges_f32: u32::MAX, // no f32 mirror; edge cap is the SDRAM end
            sdram_size: edges,   // plus edges — the caller sizes for its edge count
        }
    }

    /// True when this is a scaled (recomputed) map.
    pub fn is_scaled(&self) -> bool {
        self.vu != VU || self.spike_counts != SPIKE_COUNTS || self.edges != EDGES
    }

    /// Fixed-point noise-window rows for this layout (the guest cycles
    /// the table with a hashed `t mod NOISE_TICKS`).
    pub fn noise_rows(&self, n: usize, ticks: u32) -> u32 {
        let cap = (self.noise_f32 - self.noise) / (2 * n as u32);
        ticks.min(cap).max(1)
    }

    /// f32 noise-window rows (soft-float mirror; 1 for scaled layouts,
    /// which never run soft-float).
    pub fn noise_rows_f32(&self, n: usize, ticks: u32) -> u32 {
        let cap = (self.rowptr - self.noise_f32) / (4 * n as u32);
        ticks.min(cap).max(1)
    }

    /// Exclusive upper bound for the fixed-point edge region, given the
    /// SDRAM size actually configured.
    pub fn edge_cap(&self, sdram_size: u32) -> u32 {
        self.edges_f32.min(sdram_size)
    }
}

/// Emit the `.equ` prelude encoding a resolved layout for the assembler.
pub fn equ_prelude_for(lay: &Layout, n: usize, ticks: u32, n_cores: u32, tau: u32) -> String {
    format!(
        "\
        .equ N, {n}\n\
        .equ TICKS, {ticks}\n\
        .equ NCORES, {n_cores}\n\
        .equ TAU, {tau}\n\
        .equ VU, {vu:#x}\n\
        .equ ISYN, {isyn:#x}\n\
        .equ PARAMS, {params:#x}\n\
        .equ SPIKE_LISTS, {spike_lists:#x}\n\
        .equ SPIKE_SEG, {spike_seg:#x}\n\
        .equ SPIKE_PARITY_STRIDE, {spike_parity_stride:#x}\n\
        .equ SPIKE_COUNTS, {spike_counts:#x}\n\
        .equ LAST_SPIKE, {last_spike:#x}\n\
        .equ F32_V, {f32_v:#x}\n\
        .equ F32_U, {f32_u:#x}\n\
        .equ F32_ISYN, {f32_isyn:#x}\n\
        .equ F32_PARAMS, {f32_params:#x}\n\
        .equ WEIGHTS, {weights:#x}\n\
        .equ WEIGHTS_F32, {weights_f32:#x}\n\
        .equ NOISE, {noise:#x}\n\
        .equ NOISE_F32, {noise_f32:#x}\n\
        .equ ROWPTR, {rowptr:#x}\n\
        .equ EDGES, {edges:#x}\n\
        .equ MMIO_COREID, {MMIO_COREID:#x}\n\
        .equ MMIO_BARRIER, {MMIO_BARRIER:#x}\n\
        .equ MMIO_HALT, {MMIO_HALT:#x}\n\
        .equ MMIO_SPIKE_LOG, {MMIO_SPIKE_LOG:#x}\n\
        .equ MMIO_ROI, {MMIO_ROI:#x}\n\
        .equ MMIO_STIM, {MMIO_STIM:#x}\n\
        {edges_f32_equ}",
        vu = lay.vu,
        isyn = lay.isyn,
        params = lay.params,
        spike_lists = lay.spike_lists,
        spike_seg = lay.spike_seg,
        spike_parity_stride = lay.spike_parity_stride,
        spike_counts = lay.spike_counts,
        last_spike = lay.last_spike,
        f32_v = lay.f32_v,
        f32_u = lay.f32_u,
        f32_isyn = lay.f32_isyn,
        f32_params = lay.f32_params,
        weights = lay.weights,
        weights_f32 = lay.weights_f32,
        noise = lay.noise,
        noise_f32 = lay.noise_f32,
        rowptr = lay.rowptr,
        edges = lay.edges,
        // Scaled layouts have no f32 edge mirror (the sentinel is not a
        // valid `li` operand); only soft-float code references the symbol
        // and soft-float never runs scaled.
        edges_f32_equ = if lay.edges_f32 == u32::MAX {
            String::new()
        } else {
            format!(".equ EDGES_F32, {:#x}\n", lay.edges_f32)
        },
    )
}

/// Emit the `.equ` prelude for the standard layout (compatibility shim).
pub fn equ_prelude(n: usize, ticks: u32, n_cores: u32, tau: u32) -> String {
    equ_prelude_for(&Layout::standard(), n, ticks, n_cores, tau)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        // Scratch regions for the maximum supported network (1024 neurons).
        let n = 1024u32;
        assert!(VU + 4 * n <= ISYN);
        assert!(ISYN + 4 * n <= PARAMS);
        assert!(PARAMS + 8 * n <= SPIKE_LISTS);
        const { assert!(SPIKE_LISTS + 2 * SPIKE_PARITY_STRIDE <= SPIKE_COUNTS) };
        const { assert!(SPIKE_COUNTS + 2 * 8 * 4 <= F32_V) };
        assert!(F32_V + 4 * n <= F32_U);
        assert!(F32_U + 4 * n <= F32_ISYN);
        assert!(F32_ISYN + 4 * n <= F32_PARAMS);
        // SDRAM tables for 1024 neurons and 1500 ticks.
        assert!(WEIGHTS + 2 * n * n <= WEIGHTS_F32);
        assert!(WEIGHTS_F32 + 4 * n * n <= NOISE);
        assert!(NOISE + 2 * n * 1500 <= NOISE_F32);
        // f32 noise mirrors are only built for short soft-float runs.
        assert!(NOISE_F32 + 4 * n * 600 <= ROWPTR);
        assert!(ROWPTR + 8 * (n + 1) * 4 <= EDGES);
        // Sparse tables hold up to 2M edges (dense 1024^2 allowed).
        assert!(EDGES + 4 * n * n <= EDGES_F32);
    }

    #[test]
    fn prelude_assembles() {
        let src = format!(
            "{}\nli a0, VU\nli a1, NOISE_F32\nebreak",
            equ_prelude(1000, 1000, 2, 2)
        );
        let prog = izhi_isa::Assembler::new().assemble(&src).unwrap();
        assert!(prog.size() > 0);
    }

    #[test]
    fn mmio_constants_match_sim() {
        use izhi_sim::mem::layout as sl;
        assert_eq!(MMIO, sl::MMIO_BASE);
        assert_eq!(MMIO_COREID, sl::MMIO_BASE + sl::MMIO_COREID);
        assert_eq!(MMIO_BARRIER, sl::MMIO_BASE + sl::MMIO_BARRIER);
        assert_eq!(MMIO_HALT, sl::MMIO_BASE + sl::MMIO_HALT);
        assert_eq!(MMIO_SPIKE_LOG, sl::MMIO_BASE + sl::MMIO_SPIKE_LOG);
        assert_eq!(MMIO_ROI, sl::MMIO_BASE + sl::MMIO_ROI);
        assert_eq!(MMIO_STIM, sl::MMIO_BASE + sl::MMIO_STIM);
        assert_eq!(SCRATCH, sl::SCRATCH_BASE);
    }

    #[test]
    fn standard_layout_reproduces_the_historical_constants() {
        let lay = Layout::standard();
        assert_eq!(lay.vu, VU);
        assert_eq!(lay.isyn, ISYN);
        assert_eq!(lay.params, PARAMS);
        assert_eq!(lay.spike_lists, SPIKE_LISTS);
        assert_eq!(lay.spike_seg, SPIKE_SEG);
        assert_eq!(lay.spike_seg_shift, 11);
        assert_eq!(lay.spike_parity_stride, SPIKE_PARITY_STRIDE);
        assert_eq!(lay.spike_counts, SPIKE_COUNTS);
        assert_eq!(lay.count_parity_shift, 5);
        assert_eq!(lay.stack_top, 0x1004_0000);
        assert_eq!(lay.stack_shift, 13);
        assert_eq!(
            (lay.weights, lay.noise, lay.rowptr),
            (WEIGHTS, NOISE, ROWPTR)
        );
        assert_eq!((lay.edges, lay.edges_f32), (EDGES, EDGES_F32));
        assert!(!lay.is_scaled());
        // Shapes inside the historical bounds resolve to it.
        assert_eq!(Layout::for_shape(4096, 1500, 8, 512), lay);
        assert_eq!(Layout::for_shape(1000, 1000, 2, 500), lay);
        // Shapes outside any bound go scaled.
        assert!(Layout::for_shape(10240, 200, 16, 640).is_scaled());
        assert!(Layout::for_shape(2000, 200, 16, 125).is_scaled());
        assert!(Layout::for_shape(5000, 200, 4, 1250).is_scaled());
    }

    #[test]
    fn scaled_layout_regions_do_not_overlap() {
        for (n, ticks, cores) in [
            (10240usize, 200u32, 16u32),
            (20000, 1000, 64),
            (2000, 50, 16),
        ] {
            let chunk = n.div_ceil(cores as usize);
            let lay = Layout::for_shape(n, ticks, cores, chunk);
            let n32 = n as u32;
            assert!(lay.core_slots >= cores && lay.core_slots.is_power_of_two());
            assert!(lay.vu + 4 * n32 <= lay.isyn);
            assert!(lay.isyn + 4 * n32 <= lay.params);
            assert!(lay.params + 8 * n32 <= lay.spike_lists);
            assert!(2 * chunk as u32 <= lay.spike_seg, "chunk fits a segment");
            assert_eq!(lay.spike_seg, 1 << lay.spike_seg_shift);
            assert_eq!(lay.spike_parity_stride, lay.spike_seg * lay.core_slots);
            assert!(lay.spike_lists + 2 * lay.spike_parity_stride <= lay.spike_counts);
            assert_eq!(1u32 << lay.count_parity_shift, lay.core_slots * 4);
            assert!(lay.spike_counts + 2 * lay.core_slots * 4 <= lay.last_spike);
            assert!(lay.last_spike + 4 * n32 <= lay.f32_v);
            // Stacks fit between the last region and the scratch top.
            assert!(lay.f32_v + (lay.core_slots << lay.stack_shift) <= lay.stack_top);
            assert_eq!(lay.stack_top, SCRATCH + lay.scratch_size);
            // SDRAM: noise window, rowptr tables and edges are disjoint.
            assert!(lay.noise >= 0x20_0000, "code region preserved");
            assert!(lay.noise + 2 * n32 * lay.noise_rows(n, ticks) <= lay.rowptr);
            assert!(lay.rowptr + cores * (n32 + 1) * 4 <= lay.edges);
            assert!(lay.sdram_size >= lay.edges);
        }
    }

    #[test]
    fn scaled_prelude_assembles() {
        let lay = Layout::for_shape(10240, 200, 16, 640);
        let src = format!(
            "{}\nli a0, VU\nli a1, LAST_SPIKE\nli a2, EDGES\nli a3, MMIO_STIM\nebreak",
            equ_prelude_for(&lay, 10240, 200, 16, 2)
        );
        let prog = izhi_isa::Assembler::new().assemble(&src).unwrap();
        assert!(prog.size() > 0);
    }
}

//! Guest memory-map constants shared between the assembly generator and
//! the host-side image builder.
//!
//! The split mirrors the paper's DE10 system (§VI): hot per-neuron state in
//! on-chip memory, bulk tables (weights, precomputed thalamic noise) in
//! SDRAM behind the D-cache, code in SDRAM behind the I-cache.

/// Scratchpad base (on-chip, single-cycle).
pub const SCRATCH: u32 = 0x1000_0000;

/// VU words (packed v/u, 4 B per neuron) — scratchpad.
pub const VU: u32 = SCRATCH;
/// Synaptic currents (Q15.16, 4 B per neuron) — scratchpad.
pub const ISYN: u32 = SCRATCH + 0x4000;
/// Quantised parameter table (rs1, rs2 word pair per neuron) — scratchpad.
pub const PARAMS: u32 = SCRATCH + 0x8000;
/// Spike lists: two parities × up to 8 cores × 1024 u16 entries.
pub const SPIKE_LISTS: u32 = SCRATCH + 0x1_0000;
/// Bytes per core segment in a spike list.
pub const SPIKE_SEG: u32 = 0x800;
/// Per-parity stride (8 core segments).
pub const SPIKE_PARITY_STRIDE: u32 = SPIKE_SEG * 8;
/// Spike counts: two parities × 8 cores × u32.
pub const SPIKE_COUNTS: u32 = SCRATCH + 0x1_8000;
/// Soft-float state arrays (f32 v, u, isyn) — scratchpad.
pub const F32_V: u32 = SCRATCH + 0x2_0000;
/// Soft-float u array.
pub const F32_U: u32 = SCRATCH + 0x2_4000;
/// Soft-float isyn array.
pub const F32_ISYN: u32 = SCRATCH + 0x2_8000;
/// Soft-float parameter table (a, b, c, d as f32, 16 B per neuron).
pub const F32_PARAMS: u32 = SCRATCH + 0x2_C000;

/// Weight matrix, row-major by presynaptic neuron, i16 Q7.8 — SDRAM.
pub const WEIGHTS: u32 = 0x0020_0000;
/// Weight matrix as f32 (soft-float variant) — SDRAM.
pub const WEIGHTS_F32: u32 = 0x0060_0000;
/// Thalamic-noise table `[tick][neuron]`, i16 Q7.8 — SDRAM.
pub const NOISE: u32 = 0x00A0_0000;
/// Thalamic-noise table as f32 (soft-float variant) — SDRAM.
pub const NOISE_F32: u32 = 0x00D0_0000;
/// Sparse-connectivity row pointers, one `(N+1)`-entry u32 table per core
/// (`ROWPTR + core*(N+1)*4 + j*4`) — SDRAM.
pub const ROWPTR: u32 = 0x00F8_0000;
/// Sparse edges `(target u16, weight i16 Q7.8)` grouped by (core, pre) —
/// SDRAM.
pub const EDGES: u32 = 0x0100_0000;
/// f32 edge weights parallel to [`EDGES`] (soft-float variant) — SDRAM.
pub const EDGES_F32: u32 = 0x0180_0000;

/// Number of noise-table rows that fit the fixed-point window; the guest
/// cycles the table with `t mod NOISE_TICKS`, so long runs reuse the noise
/// stream periodically.
pub fn noise_period(n: usize, ticks: u32) -> u32 {
    let cap = (NOISE_F32 - NOISE) / (2 * n as u32);
    ticks.min(cap).max(1)
}

/// Same for the f32 mirror used by the soft-float variant (smaller window).
pub fn noise_period_f32(n: usize, ticks: u32) -> u32 {
    let cap = (ROWPTR - NOISE_F32) / (4 * n as u32);
    ticks.min(cap).max(1)
}

/// MMIO block base and registers (mirrors `izhi_sim::mem::layout`).
pub const MMIO: u32 = 0xF000_0000;
/// Core-id register.
pub const MMIO_COREID: u32 = MMIO + 0x04;
/// Barrier register.
pub const MMIO_BARRIER: u32 = MMIO + 0x10;
/// Halt register.
pub const MMIO_HALT: u32 = MMIO + 0x18;
/// Spike-log FIFO.
pub const MMIO_SPIKE_LOG: u32 = MMIO + 0x1C;
/// ROI control.
pub const MMIO_ROI: u32 = MMIO + 0x24;

/// Emit the `.equ` prelude encoding this layout for the assembler.
pub fn equ_prelude(n: usize, ticks: u32, n_cores: u32, tau: u32) -> String {
    format!(
        "\
        .equ N, {n}\n\
        .equ TICKS, {ticks}\n\
        .equ NCORES, {n_cores}\n\
        .equ TAU, {tau}\n\
        .equ VU, {VU:#x}\n\
        .equ ISYN, {ISYN:#x}\n\
        .equ PARAMS, {PARAMS:#x}\n\
        .equ SPIKE_LISTS, {SPIKE_LISTS:#x}\n\
        .equ SPIKE_SEG, {SPIKE_SEG:#x}\n\
        .equ SPIKE_PARITY_STRIDE, {SPIKE_PARITY_STRIDE:#x}\n\
        .equ SPIKE_COUNTS, {SPIKE_COUNTS:#x}\n\
        .equ F32_V, {F32_V:#x}\n\
        .equ F32_U, {F32_U:#x}\n\
        .equ F32_ISYN, {F32_ISYN:#x}\n\
        .equ F32_PARAMS, {F32_PARAMS:#x}\n\
        .equ WEIGHTS, {WEIGHTS:#x}\n\
        .equ WEIGHTS_F32, {WEIGHTS_F32:#x}\n\
        .equ NOISE, {NOISE:#x}\n\
        .equ NOISE_F32, {NOISE_F32:#x}\n\
        .equ ROWPTR, {ROWPTR:#x}\n\
        .equ EDGES, {EDGES:#x}\n\
        .equ EDGES_F32, {EDGES_F32:#x}\n\
        .equ MMIO_COREID, {MMIO_COREID:#x}\n\
        .equ MMIO_BARRIER, {MMIO_BARRIER:#x}\n\
        .equ MMIO_HALT, {MMIO_HALT:#x}\n\
        .equ MMIO_SPIKE_LOG, {MMIO_SPIKE_LOG:#x}\n\
        .equ MMIO_ROI, {MMIO_ROI:#x}\n\
        "
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        // Scratch regions for the maximum supported network (1024 neurons).
        let n = 1024u32;
        assert!(VU + 4 * n <= ISYN);
        assert!(ISYN + 4 * n <= PARAMS);
        assert!(PARAMS + 8 * n <= SPIKE_LISTS);
        const { assert!(SPIKE_LISTS + 2 * SPIKE_PARITY_STRIDE <= SPIKE_COUNTS) };
        const { assert!(SPIKE_COUNTS + 2 * 8 * 4 <= F32_V) };
        assert!(F32_V + 4 * n <= F32_U);
        assert!(F32_U + 4 * n <= F32_ISYN);
        assert!(F32_ISYN + 4 * n <= F32_PARAMS);
        // SDRAM tables for 1024 neurons and 1500 ticks.
        assert!(WEIGHTS + 2 * n * n <= WEIGHTS_F32);
        assert!(WEIGHTS_F32 + 4 * n * n <= NOISE);
        assert!(NOISE + 2 * n * 1500 <= NOISE_F32);
        // f32 noise mirrors are only built for short soft-float runs.
        assert!(NOISE_F32 + 4 * n * 600 <= ROWPTR);
        assert!(ROWPTR + 8 * (n + 1) * 4 <= EDGES);
        // Sparse tables hold up to 2M edges (dense 1024^2 allowed).
        assert!(EDGES + 4 * n * n <= EDGES_F32);
    }

    #[test]
    fn prelude_assembles() {
        let src = format!(
            "{}\nli a0, VU\nli a1, NOISE_F32\nebreak",
            equ_prelude(1000, 1000, 2, 2)
        );
        let prog = izhi_isa::Assembler::new().assemble(&src).unwrap();
        assert!(prog.size() > 0);
    }

    #[test]
    fn mmio_constants_match_sim() {
        use izhi_sim::mem::layout as sl;
        assert_eq!(MMIO, sl::MMIO_BASE);
        assert_eq!(MMIO_COREID, sl::MMIO_BASE + sl::MMIO_COREID);
        assert_eq!(MMIO_BARRIER, sl::MMIO_BASE + sl::MMIO_BARRIER);
        assert_eq!(MMIO_HALT, sl::MMIO_BASE + sl::MMIO_HALT);
        assert_eq!(MMIO_SPIKE_LOG, sl::MMIO_BASE + sl::MMIO_SPIKE_LOG);
        assert_eq!(MMIO_ROI, sl::MMIO_BASE + sl::MMIO_ROI);
        assert_eq!(SCRATCH, sl::SCRATCH_BASE);
    }
}

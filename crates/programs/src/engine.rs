//! The parameterised guest SNN engine.
//!
//! One assembly skeleton, three arithmetic variants for the per-neuron
//! update (phase B):
//!
//! * [`Variant::Npu`] — the paper's flow (Listing 1): `nmldl` per neuron,
//!   one `nmdec` for the synaptic decay, two `nmpn` half-steps;
//! * [`Variant::BaseFixed`] — the same fixed-point math in base RV32IM
//!   instructions (the "19 operations" of §II-C);
//! * [`Variant::SoftFloat`] — IEEE-754 single precision through the
//!   [`crate::softfloat`] library (the §VI-C baseline).
//!
//! Every tick has two phases separated by a hardware barrier:
//! phase A scatters the previous tick's spikes into the synaptic-current
//! array (row-major weight walk), phase B updates each neuron in the
//! core's range, appends spikes to a per-core list and logs them to the
//! MMIO spike FIFO. Work is partitioned across cores in contiguous chunks.

use izhi_core::dcu::SHIFT_TABLES;
use izhi_core::params::FixedIzhParams;
use izhi_fixed::Q7_8;
use izhi_isa::asm::Assembler;
use izhi_sim::{
    register_kernel_span, CodeTable, KernelVariant, MainMemory, Metrics, OpClass, PerfCounters,
    SimError, System, SystemConfig,
};
use izhi_snn::analysis::SpikeRaster;
use izhi_snn::network::Network;
use izhi_snn::noise::XorShift32;

use crate::layout;
use crate::softfloat::FADD_FMUL_ASM;

/// Arithmetic variant of the neuron-update kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Custom neuromorphic instructions (NPU + DCU).
    Npu,
    /// Base-ISA fixed point (no custom instructions).
    BaseFixed,
    /// Soft-float single precision.
    SoftFloat,
}

/// Engine build/run configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Neuron count (≤ 1024 per core chunk).
    pub n: usize,
    /// Number of 1 ms ticks to simulate.
    pub ticks: u32,
    /// Core count.
    pub n_cores: u32,
    /// DCU τ selector (1..9).
    pub tau: u32,
    /// Pin-voltage bit (Sudoku uses it).
    pub pin: bool,
    /// Kernel variant.
    pub variant: Variant,
    /// Use sparse (CSR) spike propagation instead of dense weight rows.
    /// The right choice for the Sudoku network (4 % density); the 80-20
    /// network is fully connected and uses the dense walk.
    pub sparse: bool,
    /// Emit the hazard-aware instruction schedule (default). When false,
    /// the NPU kernel uses the naive ordering where every load/nm result
    /// is consumed immediately — the regime the paper measured (§VI-B
    /// reports 0.7-9 % hazard stalls and proposes CSR writeback to cut
    /// them).
    pub scheduled: bool,
    /// Couple the cores each tick (default). When false, every core's
    /// chunk is treated as an independent sub-population: phase A reads
    /// only the core's *own* previous-tick spike list and the per-tick
    /// barriers are dropped (only the start-up barrier remains). Only
    /// correct for block-diagonal weight matrices partitioned on the chunk
    /// boundaries — the sweep workloads are built exactly that way.
    pub coupled: bool,
    /// STDP plasticity: synaptic weights evolve during the run via a
    /// delivery-time nearest-neighbour rule in the sparse phase-A walk
    /// (requires `sparse` and [`Variant::Npu`]). Plastic runs read the
    /// final weight table back and report it as
    /// [`WorkloadResult::weight_hash`].
    pub plastic: bool,
    /// Emit the per-tick stimulus drain: each core queries the MMIO
    /// stimulus port between phases A and B and adds a fixed current to
    /// every injected neuron it owns. The *schedule* itself travels on
    /// [`SystemConfig::stim`] (seed data, not shape data) — the drain
    /// code is emitted whenever this flag is set, so one template serves
    /// every seed's plan, including empty ones.
    pub stim: bool,
    /// System configuration template (clock, caches, bus).
    pub system: SystemConfig,
}

impl EngineConfig {
    /// Sensible defaults for a given workload size.
    pub fn new(n: usize, ticks: u32, n_cores: u32, variant: Variant) -> Self {
        let mut system = SystemConfig::with_cores(n_cores);
        system.sdram_size = 32 * 1024 * 1024;
        EngineConfig {
            n,
            ticks,
            n_cores,
            tau: 2,
            pin: false,
            variant,
            sparse: false,
            scheduled: true,
            coupled: true,
            plastic: false,
            stim: false,
            system,
        }
    }

    /// Neurons per core (the last core may get fewer).
    pub fn chunk(&self) -> usize {
        self.n.div_ceil(self.n_cores as usize)
    }

    /// The guest memory map this shape resolves to (standard or scaled).
    pub fn layout(&self) -> layout::Layout {
        layout::Layout::for_shape(self.n, self.ticks, self.n_cores, self.chunk())
    }

    /// Grow the system's memory sizes to what the resolved layout needs
    /// (plus `extra_edge_words` CSR edge words past the edge-region base).
    /// Call after changing the shape; a no-op for standard shapes that
    /// already fit the defaults.
    pub fn fit_memory(&mut self, extra_edge_words: usize) {
        let lay = self.layout();
        self.system.scratch_size = self.system.scratch_size.max(lay.scratch_size);
        let edges_end = lay
            .edges
            .saturating_add(4 * extra_edge_words as u32)
            .max(lay.sdram_size);
        // Round up to a MiB so template cache keys stay tidy.
        let need = (edges_end + 0xF_FFFF) & !0xF_FFFF;
        self.system.sdram_size = self.system.sdram_size.max(need);
    }
}

/// Stimulus current added per injected event, Q15.16 (64.0 — enough to
/// drive a resting RS neuron to threshold within a couple of ticks).
pub const STIM_CURRENT_Q15_16: u32 = 64 << 16;

/// STDP potentiation per delivery, Q7.8 (~+0.004 per pre→post event).
pub const STDP_A_PLUS: i32 = 1;
/// STDP depression per post-before-pre delivery, Q7.8.
pub const STDP_A_MINUS: i32 = 3;
/// Nearest-neighbour LTD window: a delivery within this many ticks after
/// the target's last spike depresses instead of potentiating.
pub const STDP_WINDOW: u32 = 8;
/// Upper weight clamp, Q7.8 (32.0 — far above any generated initial
/// weight, so the clamp bounds drift without crushing the network).
pub const STDP_WMAX: i32 = 8192;
/// Lower weight clamp, Q7.8 (−32.0).
pub const STDP_WMIN: i32 = -8192;

/// The guest-memory spans a load wrote: `(address, length)` pairs in
/// write order.
///
/// [`GuestImage::load_into_mem`] records one for the program's data
/// tables; [`prepare_run`] records one for the program segments. Together
/// they name every byte a run touches before execution, which is what
/// lets a [run template](crate::template) replay a build into a fresh
/// memory as a handful of bulk copies — the seed-invariant spans come
/// from the snapshot, the seed-dependent ones are re-patched from a
/// rebuilt image — instead of re-assembling and re-serialising anything.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PatchMap {
    spans: Vec<(u32, u32)>,
}

impl PatchMap {
    /// Record one written span.
    pub fn record(&mut self, addr: u32, len: usize) {
        if len > 0 {
            self.spans.push((addr, len as u32));
        }
    }

    /// The recorded `(address, length)` spans, in write order.
    pub fn spans(&self) -> &[(u32, u32)] {
        &self.spans
    }

    /// Total bytes covered.
    pub fn bytes(&self) -> u64 {
        self.spans.iter().map(|&(_, l)| l as u64).sum()
    }

    /// Copy every recorded span from `src` into `dst` (bulk copies).
    pub fn replay(&self, src: &MainMemory, dst: &mut MainMemory) {
        for &(addr, len) in &self.spans {
            let bytes = src
                .read_bytes(addr, len as usize)
                .expect("patch span outside source memory");
            assert!(
                dst.write_bytes(addr, &bytes),
                "patch span outside destination memory"
            );
        }
    }
}

/// Quantised CSR connectivity for images too big for a dense matrix:
/// row-major by presynaptic neuron, zero-quantized edges dropped. The
/// canonical source for the per-core CSR tables when present.
#[derive(Debug, Clone)]
pub struct CsrWeights {
    /// Row pointers (len n+1) over `targets`/`weights_q`.
    pub row_ptr: Vec<u32>,
    /// Postsynaptic indices, sorted within each row.
    pub targets: Vec<u32>,
    /// Q7.8 weights parallel to `targets`.
    pub weights_q: Vec<i16>,
}

/// Host-built memory image for a workload.
#[derive(Debug, Clone)]
pub struct GuestImage {
    /// Quantised per-neuron parameters.
    pub params: Vec<FixedIzhParams>,
    /// Row-major Q7.8 weights (N×N); empty for CSR-native images.
    pub weights_q: Vec<i16>,
    /// Quantised CSR connectivity (large sparse images; replaces the
    /// dense matrix as the CSR-table source and skips the dense upload).
    pub csr: Option<CsrWeights>,
    /// Premixed thalamic drive `[tick][neuron]`, Q7.8 (bias + noise).
    pub noise_q: Vec<i16>,
    /// Initial VU words.
    pub init_vu: Vec<u32>,
    n: usize,
    ticks: u32,
}

impl GuestImage {
    /// Build from a network plus per-neuron bias and noise descriptors.
    /// The noise stream is drawn host-side — the paper precomputes thalamic
    /// inputs as well (Listing 1 reads them from memory).
    pub fn from_network(
        net: &Network,
        bias: &[f64],
        noise_std: &[f64],
        ticks: u32,
        seed: u32,
    ) -> Self {
        Self::from_network_scheduled(net, bias, noise_std, &[], ticks, seed)
    }

    /// Like [`GuestImage::from_network`], with a cyclic per-tick noise
    /// amplitude schedule (annealing cycles for the WTA search; empty =
    /// constant amplitude 1).
    pub fn from_network_scheduled(
        net: &Network,
        bias: &[f64],
        noise_std: &[f64],
        schedule: &[f64],
        ticks: u32,
        seed: u32,
    ) -> Self {
        let n = net.len();
        assert_eq!(bias.len(), n);
        assert_eq!(noise_std.len(), n);
        let params = net.quantized_params();
        let mut weights_q = vec![0i16; n * n];
        for pre in 0..n {
            for (post, w) in net.out_edges(pre) {
                weights_q[pre * n + post as usize] = Q7_8::from_f64(w).raw();
            }
        }
        let mut rng = XorShift32::new(seed);
        let noise_rows = layout::noise_period(n, ticks);
        let mut noise_q = Vec::with_capacity(noise_rows as usize * n);
        for t in 0..noise_rows {
            let gain = if schedule.is_empty() {
                1.0
            } else {
                schedule[t as usize % schedule.len()]
            };
            for i in 0..n {
                let v = bias[i] + gain * noise_std[i] * rng.next_gaussian();
                noise_q.push(Q7_8::from_f64(v).raw());
            }
        }
        let init_vu = net
            .params
            .iter()
            .map(|p| {
                let v = Q7_8::from_f64(p.c);
                let u = Q7_8::from_f64(p.b * p.c);
                izhi_fixed::qformat::pack_vu(v, u)
            })
            .collect();
        GuestImage {
            params,
            weights_q,
            csr: None,
            noise_q,
            init_vu,
            n,
            ticks,
        }
    }

    /// Build a CSR-native image: no dense weight matrix is materialised
    /// (a 10k-neuron dense table would dwarf both host memory and the
    /// guest SDRAM map), the network's CSR rows are quantised directly.
    /// `lay` must be the layout the run resolves to — the noise window is
    /// sized from it.
    pub fn from_network_csr(
        net: &Network,
        bias: &[f64],
        noise_std: &[f64],
        ticks: u32,
        seed: u32,
        lay: &layout::Layout,
    ) -> Self {
        let n = net.len();
        assert_eq!(bias.len(), n);
        assert_eq!(noise_std.len(), n);
        let params = net.quantized_params();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(net.n_synapses());
        let mut weights_q = Vec::with_capacity(net.n_synapses());
        row_ptr.push(0u32);
        for pre in 0..n {
            for (post, w) in net.out_edges(pre) {
                let q = Q7_8::from_f64(w).raw();
                if q != 0 {
                    targets.push(post);
                    weights_q.push(q);
                }
            }
            row_ptr.push(targets.len() as u32);
        }
        let mut rng = XorShift32::new(seed);
        let noise_rows = lay.noise_rows(n, ticks);
        let mut noise_q = Vec::with_capacity(noise_rows as usize * n);
        for _ in 0..noise_rows {
            for i in 0..n {
                let v = bias[i] + noise_std[i] * rng.next_gaussian();
                noise_q.push(Q7_8::from_f64(v).raw());
            }
        }
        let init_vu = net
            .params
            .iter()
            .map(|p| {
                let v = Q7_8::from_f64(p.c);
                let u = Q7_8::from_f64(p.b * p.c);
                izhi_fixed::qformat::pack_vu(v, u)
            })
            .collect();
        GuestImage {
            params,
            weights_q: Vec::new(),
            csr: Some(CsrWeights {
                row_ptr,
                targets,
                weights_q,
            }),
            noise_q,
            init_vu,
            n,
            ticks,
        }
    }

    /// Write all tables into simulator memory. The big arrays (weights,
    /// noise) are serialised host-side and uploaded with one bulk copy
    /// each — at paper scale the seed's per-element `write_u16` loop was a
    /// visible slice of total workload wall time.
    pub fn load_into(&self, sys: &mut System, cfg: &EngineConfig) {
        let mut patches = PatchMap::default();
        self.load_into_mem(&mut sys.shared_mut().mem, cfg, &mut patches);
    }

    /// [`GuestImage::load_into`] against bare main memory, recording every
    /// written span into `patches`. This is the form the template cache
    /// uses: it needs the loaded bytes *and* the patch map (the spans a
    /// different-seed instantiation must re-patch) without a full
    /// [`System`] in hand.
    pub fn load_into_mem(&self, mem: &mut MainMemory, cfg: &EngineConfig, patches: &mut PatchMap) {
        fn le_bytes_u16(values: impl Iterator<Item = u16>) -> Vec<u8> {
            values.flat_map(u16::to_le_bytes).collect()
        }
        let lay = cfg.layout();
        let variant = cfg.variant;
        for (i, p) in self.params.iter().enumerate() {
            let (rs1, rs2) = p.pack();
            mem.write_u32(lay.params + 8 * i as u32, rs1);
            mem.write_u32(lay.params + 8 * i as u32 + 4, rs2);
        }
        patches.record(lay.params, 8 * self.params.len());
        for (i, &vu) in self.init_vu.iter().enumerate() {
            mem.write_u32(lay.vu + 4 * i as u32, vu);
            mem.write_u32(lay.isyn + 4 * i as u32, 0);
        }
        patches.record(lay.vu, 4 * self.init_vu.len());
        patches.record(lay.isyn, 4 * self.init_vu.len());
        if !self.weights_q.is_empty() {
            assert!(
                !lay.is_scaled(),
                "scaled layouts have no dense weight region — build a CSR-native image"
            );
            let weights = le_bytes_u16(self.weights_q.iter().map(|&w| w as u16));
            assert!(mem.write_bytes(lay.weights, &weights));
            patches.record(lay.weights, weights.len());
        }
        let noise = le_bytes_u16(self.noise_q.iter().map(|&x| x as u16));
        // An image built for more ticks than this run's layout window holds
        // is truncated to the window — the guest indexes rows modulo
        // NOISE_TICKS, which never reaches past it.
        let take = noise.len().min((lay.noise_f32 - lay.noise) as usize);
        assert!(mem.write_bytes(lay.noise, &noise[..take]));
        patches.record(lay.noise, take);
        if cfg.plastic {
            // Last-spike ticks start "half a range ago": far outside any
            // plausible STDP window (so the first delivery to a silent
            // neuron potentiates), yet never wrapping into it.
            for i in 0..self.n {
                mem.write_u32(lay.last_spike + 4 * i as u32, 0x8000_0000);
            }
            patches.record(lay.last_spike, 4 * self.n);
        }
        if variant == Variant::SoftFloat {
            self.load_f32_mirrors(mem, patches);
        }
        if cfg.sparse {
            self.load_csr_tables(mem, cfg, &lay, patches);
        }
    }

    /// Build and load the per-core CSR spike-propagation tables: for every
    /// (owner core, presynaptic neuron) the row of `(target, weight)` pairs
    /// whose targets the core owns. The rows come from [`GuestImage::csr`]
    /// when present (large sparse images) and from a scan of the dense
    /// matrix otherwise — byte-identical tables either way.
    fn load_csr_tables(
        &self,
        mem: &mut MainMemory,
        cfg: &EngineConfig,
        lay: &layout::Layout,
        patches: &mut PatchMap,
    ) {
        let n = self.n;
        let chunk = cfg.chunk();
        assert!(
            self.csr.is_none() || cfg.variant != Variant::SoftFloat,
            "CSR-native images carry no f32 edge mirror"
        );
        let mut edge_idx: u32 = 0;
        for core in 0..cfg.n_cores as usize {
            let lo = (core * chunk).min(n);
            let hi = ((core + 1) * chunk).min(n);
            let rowptr_base = lay.rowptr + (core * (n + 1) * 4) as u32;
            for pre in 0..n {
                mem.write_u32(rowptr_base + 4 * pre as u32, edge_idx);
                if let Some(csr) = &self.csr {
                    let rlo = csr.row_ptr[pre] as usize;
                    let row = &csr.targets[rlo..csr.row_ptr[pre + 1] as usize];
                    let a = row.partition_point(|&t| (t as usize) < lo);
                    let b = row.partition_point(|&t| (t as usize) < hi);
                    for (&t, &w) in row[a..b].iter().zip(&csr.weights_q[rlo + a..rlo + b]) {
                        let word = ((w as u16 as u32) << 16) | t;
                        mem.write_u32(lay.edges + 4 * edge_idx, word);
                        edge_idx += 1;
                    }
                } else {
                    for post in lo..hi {
                        let w = self.weights_q[pre * n + post];
                        if w != 0 {
                            let word = ((w as u16 as u32) << 16) | post as u32;
                            mem.write_u32(lay.edges + 4 * edge_idx, word);
                            if cfg.variant == Variant::SoftFloat {
                                let f = (Q7_8::from_raw(w).to_f64() as f32).to_bits();
                                mem.write_u32(lay.edges_f32 + 4 * edge_idx, f);
                            }
                            edge_idx += 1;
                        }
                    }
                }
            }
            mem.write_u32(rowptr_base + 4 * n as u32, edge_idx);
        }
        assert!(
            lay.edges + 4 * edge_idx <= lay.edge_cap(cfg.system.sdram_size),
            "sparse edge table overflow ({edge_idx} edges) — call EngineConfig::fit_memory"
        );
        // The row-pointer tables are contiguous across cores.
        patches.record(lay.rowptr, cfg.n_cores as usize * (n + 1) * 4);
        patches.record(lay.edges, 4 * edge_idx as usize);
        if cfg.variant == Variant::SoftFloat && self.csr.is_none() {
            patches.record(lay.edges_f32, 4 * edge_idx as usize);
        }
    }

    /// f32 mirrors of every table for the soft-float variant.
    fn load_f32_mirrors(&self, mem: &mut MainMemory, patches: &mut PatchMap) {
        let n = self.n;
        for (i, p) in self.params.iter().enumerate() {
            let base = layout::F32_PARAMS + 16 * i as u32;
            mem.write_u32(base, (p.a.to_f64() as f32).to_bits());
            mem.write_u32(base + 4, (p.b.to_f64() as f32).to_bits());
            mem.write_u32(base + 8, (p.c.to_f64() as f32).to_bits());
            mem.write_u32(base + 12, (p.d.to_f64() as f32).to_bits());
        }
        patches.record(layout::F32_PARAMS, 16 * self.params.len());
        for i in 0..n {
            let (v, u) = izhi_fixed::qformat::unpack_vu(self.init_vu[i]);
            mem.write_u32(layout::F32_V + 4 * i as u32, (v.to_f64() as f32).to_bits());
            mem.write_u32(layout::F32_U + 4 * i as u32, (u.to_f64() as f32).to_bits());
            mem.write_u32(layout::F32_ISYN + 4 * i as u32, 0.0f32.to_bits());
        }
        patches.record(layout::F32_V, 4 * n);
        patches.record(layout::F32_U, 4 * n);
        patches.record(layout::F32_ISYN, 4 * n);
        for (i, &w) in self.weights_q.iter().enumerate() {
            let f = (Q7_8::from_raw(w).to_f64() as f32).to_bits();
            mem.write_u32(layout::WEIGHTS_F32 + 4 * i as u32, f);
        }
        patches.record(layout::WEIGHTS_F32, 4 * self.weights_q.len());
        let f32_rows = layout::noise_period_f32(n, self.ticks) as usize;
        let mirrored = self.noise_q.len().min(f32_rows * n);
        for (i, &x) in self.noise_q.iter().take(mirrored).enumerate() {
            let f = (Q7_8::from_raw(x).to_f64() as f32).to_bits();
            mem.write_u32(layout::NOISE_F32 + 4 * i as u32, f);
        }
        patches.record(layout::NOISE_F32, 4 * mirrored);
    }

    /// The commutative weight hash of the image *as loaded*: the same
    /// per-core edge-word multiset [`load_csr_tables`](Self::load_into_mem)
    /// writes, hashed the way a plastic run hashes its final table. A
    /// plastic run whose [`WorkloadResult::weight_hash`] still equals this
    /// never updated a weight.
    pub fn initial_weight_hash(&self, cfg: &EngineConfig) -> u64 {
        let n = self.n;
        let chunk = cfg.chunk();
        let mut h: u64 = 0;
        for core in 0..cfg.n_cores as usize {
            let lo = (core * chunk).min(n);
            let hi = ((core + 1) * chunk).min(n);
            if let Some(csr) = &self.csr {
                for pre in 0..n {
                    let rlo = csr.row_ptr[pre] as usize;
                    let row = &csr.targets[rlo..csr.row_ptr[pre + 1] as usize];
                    let a = row.partition_point(|&t| (t as usize) < lo);
                    let b = row.partition_point(|&t| (t as usize) < hi);
                    for (&t, &w) in row[a..b].iter().zip(&csr.weights_q[rlo + a..rlo + b]) {
                        h = h.wrapping_add(edge_word_fnv(((w as u16 as u32) << 16) | t));
                    }
                }
            } else {
                for pre in 0..n {
                    for post in lo..hi {
                        let w = self.weights_q[pre * n + post];
                        if w != 0 {
                            let word = ((w as u16 as u32) << 16) | post as u32;
                            h = h.wrapping_add(edge_word_fnv(word));
                        }
                    }
                }
            }
        }
        h
    }
}

/// Result of running a workload on the simulator.
#[derive(Debug, Clone)]
pub struct WorkloadResult {
    /// Spike raster reconstructed from the MMIO spike log.
    pub raster: SpikeRaster,
    /// Per-core ROI metrics.
    pub metrics: Vec<Metrics>,
    /// Per-core raw ROI counters.
    pub counters: Vec<PerfCounters>,
    /// Wall-clock cycles of the whole run (slowest core).
    pub cycles: u64,
    /// Total instructions retired.
    pub instret: u64,
    /// Simulated 1 ms ticks of the run (from the configuration, so
    /// per-tick rates can never be computed against a mismatched count).
    pub ticks: u32,
    /// Commutative hash of the final guest weight table — `Some` only for
    /// plastic (STDP) runs, which read the evolved edge words back. Built
    /// as a wrapping *sum* of per-edge FNV-1a terms, so it is independent
    /// of edge enumeration order, exactly like [`WorkloadResult::raster_hash`]
    /// is of spike commit order; compare across scheduling modes and
    /// against [`GuestImage::initial_weight_hash`] to prove the weights
    /// both evolved and evolved identically everywhere.
    pub weight_hash: Option<u64>,
}

/// FNV-1a of one little-endian edge word: the per-edge term of the
/// commutative weight hash.
fn edge_word_fnv(word: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in word.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl WorkloadResult {
    /// Execution time in seconds of the measured region (slowest core).
    pub fn exec_time_s(&self) -> f64 {
        self.metrics
            .iter()
            .map(|m| m.exec_time_s)
            .fold(0.0, f64::max)
    }

    /// Per-timestep execution time in milliseconds of wall clock.
    pub fn time_per_tick_ms(&self) -> f64 {
        self.exec_time_s() * 1000.0 / self.ticks as f64
    }

    /// Order-independent FNV-1a hash of the spike raster (the raster *as a
    /// set*): identical across scheduling modes whenever the physics are,
    /// regardless of within-tick commit order. The battery runner compares
    /// this across `Exact`/`Relaxed`/`RelaxedParallel` rows.
    pub fn raster_hash(&self) -> u64 {
        let mut spikes = self.raster.spikes.clone();
        spikes.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &(t, n) in &spikes {
            for b in t.to_le_bytes().into_iter().chain(n.to_le_bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// Generate the full engine assembly for a configuration.
pub fn build_asm(cfg: &EngineConfig) -> String {
    let lay = cfg.layout();
    assert!(
        2 * cfg.chunk() as u32 <= lay.spike_seg,
        "core chunk overflows its spike-list segment"
    );
    assert!(
        cfg.n_cores >= 1 && cfg.n_cores <= lay.core_slots,
        "spike-count table sized for {} cores",
        lay.core_slots
    );
    assert!(
        cfg.ticks >= 1 && cfg.ticks < 65536,
        "spike-log packing uses 16-bit timestamps"
    );
    assert!((1..=9).contains(&cfg.tau), "DCU τ selector is 1..9");
    if lay.is_scaled() {
        assert!(
            cfg.sparse && cfg.variant != Variant::SoftFloat,
            "scaled shapes are sparse-only and fixed-point-only"
        );
    }
    if cfg.plastic {
        assert!(
            cfg.sparse && cfg.variant == Variant::Npu,
            "STDP lives in the sparse NPU phase-A walk"
        );
    }
    if cfg.stim {
        assert!(
            cfg.variant != Variant::SoftFloat,
            "the stimulus drain adds fixed-point current"
        );
    }
    let mut s = layout::equ_prelude_for(&lay, cfg.n, cfg.ticks, cfg.n_cores, cfg.tau);
    s.push_str(&format!(".equ CHUNK, {}\n", cfg.chunk()));
    s.push_str(&format!(
        ".equ NOISE_TICKS, {}\n",
        lay.noise_rows(cfg.n, cfg.ticks)
    ));
    s.push_str(&format!(
        ".equ NOISE_TICKS_F32, {}\n",
        lay.noise_rows_f32(cfg.n, cfg.ticks)
    ));
    s.push_str(&format!(".equ ROWPTR_STRIDE, {}\n", (cfg.n + 1) * 4));
    s.push_str(&format!(".equ HBITS, {}\n", u32::from(cfg.pin) << 1)); // h = 0.5 ms
    if cfg.stim {
        s.push_str(&format!(".equ STIM_CURRENT, {STIM_CURRENT_Q15_16:#x}\n"));
    }
    s.push_str(&skeleton_head(&lay));
    if cfg.variant == Variant::Npu {
        s.push_str("    li   a6, HBITS\n    nmldh x0, a6, x0\n");
    }
    s.push_str(SKELETON_LOOP_TOP);
    s.push_str(if cfg.coupled {
        PHASE_A_ALL_PRODUCERS
    } else {
        PHASE_A_OWN_PRODUCER
    });
    s.push_str(&phase_a_head(&lay));
    let stdp_store = |body: &str| {
        // STDP: the spike branch also records the neuron's spike tick for
        // the next tick's phase-A window test (t0/t5 are dead there).
        body.replacen(
            "\nphaseB_no_spike:",
            "\
\n    li   t0, LAST_SPIKE
    slli t5, a3, 2
    add  t0, t0, t5
    sw   s2, (t0)            # record my last spike tick (STDP)
phaseB_no_spike:",
            1,
        )
    };
    match cfg.variant {
        Variant::Npu => {
            if cfg.plastic {
                s.push_str(&phase_a_sparse_stdp());
            } else if cfg.sparse {
                s.push_str(PHASE_A_SPARSE);
            } else {
                s.push_str(PHASE_A_FIXED);
            }
            s.push_str(phase_a_tail(cfg.coupled));
            if cfg.stim {
                s.push_str(STIM_DRAIN);
            }
            s.push_str(&phase_b_head(&lay));
            let body = if cfg.scheduled {
                PHASE_B_NPU
            } else {
                PHASE_B_NPU_NAIVE
            };
            if cfg.plastic {
                s.push_str(&stdp_store(body));
            } else {
                s.push_str(body);
            }
        }
        Variant::BaseFixed => {
            s.push_str(if cfg.sparse {
                PHASE_A_SPARSE
            } else {
                PHASE_A_FIXED
            });
            s.push_str(phase_a_tail(cfg.coupled));
            if cfg.stim {
                s.push_str(STIM_DRAIN);
            }
            s.push_str(&phase_b_head(&lay));
            s.push_str(&phase_b_base_fixed(cfg.tau));
        }
        Variant::SoftFloat => {
            s.push_str(if cfg.sparse {
                PHASE_A_SPARSE_SOFTFLOAT
            } else {
                PHASE_A_SOFTFLOAT
            });
            s.push_str(phase_a_tail(cfg.coupled));
            s.push_str(PHASE_B_HEAD_F32);
            s.push_str(PHASE_B_SOFTFLOAT_LOOP);
        }
    }
    s.push_str(&skeleton_tail(cfg.coupled, &lay));
    if cfg.variant == Variant::SoftFloat {
        s.push_str(SF_HALF_STEP);
        s.push_str(FADD_FMUL_ASM);
    }
    s
}

/// Entry: core id, neuron range, per-core stack, spike-count reset.
fn skeleton_head(lay: &layout::Layout) -> String {
    format!(
        "
_start:
    li   t0, MMIO_COREID
    lw   s4, (t0)            # hart id
    # per-core stack at the top of the scratchpad
    li   sp, {stack_top:#x}
    slli t1, s4, {stack_shift}
    sub  sp, sp, t1
    li   t1, CHUNK
    mul  s0, s4, t1          # start neuron
    add  s1, s0, t1
    li   t2, N
    ble  s1, t2, end_ok
    add  s1, t2, x0          # clamp end
end_ok:
    ble  s0, s1, range_ok
    add  s0, s1, x0          # empty range for surplus cores
range_ok:
    li   t0, SPIKE_COUNTS
    slli t1, s4, 2
    add  t0, t0, t1
    sw   x0, (t0)            # zero parity-0 count
    sw   x0, {parity_bytes}(t0)          # zero parity-1 count
",
        stack_top = lay.stack_top,
        stack_shift = lay.stack_shift,
        parity_bytes = lay.core_slots * 4,
    )
}

/// After optional variant-specific config: barrier, ROI start, loop top.
const SKELETON_LOOP_TOP: &str = "
    call barrier
    li   t0, MMIO_ROI
    li   t1, 1
    sw   t1, (t0)            # counters: start region of interest
    li   s2, 0               # tick
    li   s3, 0               # parity
tick_loop:
    li   s7, 0               # spikes appended this tick
    bge  s0, s1, tick_publish # surplus core: nothing to do
    li   t0, 1
    sub  t6, t0, s3          # previous parity
";

/// Phase A producer initialisation, coupled engine: walk every core's
/// previous-tick spike list.
const PHASE_A_ALL_PRODUCERS: &str = "    li   a4, 0               # producer core k\n";

/// Phase A producer initialisation, uncoupled (sweep) engine: only this
/// core's own list feeds its block-diagonal sub-population.
const PHASE_A_OWN_PRODUCER: &str = "    add  a4, s4, x0          # sole producer: own spike list\n";

/// Phase A per-producer header: load the producer's spike count and point
/// `t0` at its list segment.
fn phase_a_head(lay: &layout::Layout) -> String {
    format!(
        "
phaseA_core:
    li   t0, SPIKE_COUNTS
    slli t1, t6, {count_parity_shift}
    add  t0, t0, t1
    slli t1, a4, 2
    add  t0, t0, t1
    lw   a5, (t0)            # spike count of core k, prev tick
    beqz a5, phaseA_next_core
    li   t0, SPIKE_LISTS
    li   t1, SPIKE_PARITY_STRIDE
    mul  t1, t1, t6
    add  t0, t0, t1
    slli t1, a4, {seg_shift}
    add  t0, t0, t1          # t0 = spike-list cursor
",
        count_parity_shift = lay.count_parity_shift,
        seg_shift = lay.spike_seg_shift,
    )
}

/// Phase A producer-loop tail: the coupled engine advances to the next
/// producer core; the uncoupled engine falls through after its own list.
fn phase_a_tail(coupled: bool) -> &'static str {
    if coupled {
        "
phaseA_next_core:
    addi a4, a4, 1
    li   t0, NCORES
    bne  a4, t0, phaseA_core
"
    } else {
        "
phaseA_next_core:
"
    }
}

/// Phase A for the fixed-point variants: scatter w (Q7.8 -> Q15.16) rows.
const PHASE_A_FIXED: &str = "
phaseA_spike:
    lhu  a2, (t0)            # presynaptic neuron j
    addi t0, t0, 2
    li   t1, N
    mul  a2, a2, t1
    add  a2, a2, s0
    slli a2, a2, 1
    li   t1, WEIGHTS
    add  a2, a2, t1          # &W[j][start]
    li   t1, ISYN
    slli t2, s0, 2
    add  t1, t1, t2          # &Isyn[start]
    sub  t3, s1, s0
phaseA_inner:
    lh   t4, (a2)            # w (Q7.8)
    lw   t5, (t1)            # Isyn (fills the load-use slot)
    slli t4, t4, 8           # -> Q15.16
    add  t5, t5, t4
    sw   t5, (t1)
    addi a2, a2, 2
    addi t1, t1, 4
    addi t3, t3, -1
    bnez t3, phaseA_inner
    addi a5, a5, -1
    bnez a5, phaseA_spike
";

/// Phase A, sparse CSR walk (fixed-point variants): for each spike, only
/// the edges whose targets this core owns are visited.
const PHASE_A_SPARSE: &str = "
phaseA_spike:
    lhu  a2, (t0)            # presynaptic neuron j
    addi t0, t0, 2
    li   t1, ROWPTR
    li   t2, ROWPTR_STRIDE
    mul  t2, t2, s4
    add  t1, t1, t2          # my rowptr table
    slli a2, a2, 2
    add  t1, t1, a2
    lw   t2, (t1)            # edge range lo
    lw   t3, 4(t1)           # edge range hi
    beq  t2, t3, phaseA_row_done
    slli t2, t2, 2
    li   t1, EDGES
    add  t2, t2, t1          # edge cursor
    slli t3, t3, 2
    add  t3, t3, t1          # edge end
    li   t1, ISYN
phaseA_inner:
    lh   t4, 2(t2)           # weight (Q7.8, high half)
    lhu  t5, (t2)            # target (low half)
    slli t4, t4, 8           # -> Q15.16 (fills the load-use slot)
    slli t5, t5, 2
    add  t5, t5, t1
    lw   a2, (t5)
    addi t2, t2, 4           # fills the load-use slot
    add  a2, a2, t4
    sw   a2, (t5)
    bne  t2, t3, phaseA_inner
phaseA_row_done:
    addi a5, a5, -1
    bnez a5, phaseA_spike
";

/// Phase A, sparse CSR walk with delivery-time nearest-neighbour STDP
/// (NPU variant only). Per delivered edge: if the *target* spiked within
/// [`STDP_WINDOW`] ticks before this delivery, the weight is depressed by
/// [`STDP_A_MINUS`], otherwise potentiated by [`STDP_A_PLUS`]; the result
/// is clamped to [[`STDP_WMIN`], [`STDP_WMAX`]], written back into the
/// edge word and *that updated weight* is delivered. Every edge word and
/// every `LAST_SPIKE` entry it reads belong to this core (targets are
/// owned, `LAST_SPIKE` is written by the owner's phase B on the far side
/// of a barrier), so the rule is race-free and bit-identical across all
/// scheduling modes.
fn phase_a_sparse_stdp() -> String {
    format!(
        "
phaseA_spike:
    lhu  a2, (t0)            # presynaptic neuron j
    addi t0, t0, 2
    li   t1, ROWPTR
    li   t2, ROWPTR_STRIDE
    mul  t2, t2, s4
    add  t1, t1, t2          # my rowptr table
    slli a2, a2, 2
    add  t1, t1, a2
    lw   t2, (t1)            # edge range lo
    lw   t3, 4(t1)           # edge range hi
    beq  t2, t3, phaseA_row_done
    slli t2, t2, 2
    li   t1, EDGES
    add  t2, t2, t1          # edge cursor
    slli t3, t3, 2
    add  t3, t3, t1          # edge end
    li   t1, ISYN
    li   a6, LAST_SPIKE
phaseA_inner:
    lh   t4, 2(t2)           # weight (Q7.8, high half)
    lhu  t5, (t2)            # target (low half)
    slli a7, t5, 2
    add  a7, a7, a6
    lw   a7, (a7)            # target's last spike tick
    sub  a7, s2, a7          # ticks since it (unsigned; init is huge)
    li   a3, {window}
    bltu a7, a3, stdp_dep
    addi t4, t4, {a_plus}    # potentiate
    li   a3, {wmax}
    ble  t4, a3, stdp_apply
    add  t4, a3, x0          # clamp high
    j    stdp_apply
stdp_dep:
    addi t4, t4, -{a_minus}  # depress
    li   a3, {wmin}
    bge  t4, a3, stdp_apply
    add  t4, a3, x0          # clamp low
stdp_apply:
    slli a7, t4, 16          # updated weight into the high half
    or   a7, a7, t5
    sw   a7, (t2)            # persist the plastic weight
    slli a3, t4, 8           # deliver the updated weight (-> Q15.16)
    slli t5, t5, 2
    add  t5, t5, t1
    lw   a7, (t5)
    addi t2, t2, 4           # fills the load-use slot
    add  a7, a7, a3
    sw   a7, (t5)
    bne  t2, t3, phaseA_inner
phaseA_row_done:
    addi a5, a5, -1
    bnez a5, phaseA_spike
",
        window = STDP_WINDOW,
        a_plus = STDP_A_PLUS,
        a_minus = STDP_A_MINUS,
        wmax = STDP_WMAX,
        wmin = STDP_WMIN,
    )
}

/// Per-tick stimulus drain (between phases A and B): select this tick's
/// queue on the MMIO stimulus port, then add [`STIM_CURRENT_Q15_16`] to
/// the synaptic current of every neuron the port returns until the `-1`
/// sentinel. The device queues are per-core, so each core only ever sees
/// (and owns) its own injected neurons.
const STIM_DRAIN: &str = "
    li   t0, MMIO_STIM
    sw   s2, (t0)            # select this tick's stimulus queue
    li   t3, ISYN
    li   t2, -1
    li   t5, STIM_CURRENT
stim_drain:
    lw   t1, (t0)            # next injected neuron, or -1 when drained
    beq  t1, t2, stim_done
    slli t1, t1, 2
    add  t1, t1, t3
    lw   t4, (t1)
    add  t4, t4, t5
    sw   t4, (t1)            # Isyn[neuron] += stimulus current
    j    stim_drain
stim_done:
";

/// Phase A, sparse CSR walk for the soft-float variant. The soft-float
/// library clobbers `t0`-`t6`, and `t6` holds the previous-tick parity
/// that [`PHASE_A_HEAD`] re-reads for the *next* producer core — so the
/// parity is parked in `s8` (free until phase B) across the deposit
/// calls. Without this, every producer after the first spiking one reads
/// its spike count at a garbage parity offset: an interleaving-dependent
/// value that silently broke cross-scheduler raster identity for
/// multi-core soft-float runs.
const PHASE_A_SPARSE_SOFTFLOAT: &str = "
phaseA_spike:
    lhu  a2, (t0)
    addi t0, t0, 2
    add  s5, t0, x0          # save cursor across calls
    add  s6, a5, x0          # save remaining spike count
    add  s8, t6, x0          # save prev parity (calls clobber t0-t6)
    li   t1, ROWPTR
    li   t2, ROWPTR_STRIDE
    mul  t2, t2, s4
    add  t1, t1, t2
    slli a2, a2, 2
    add  t1, t1, a2
    lw   s9, (t1)            # edge index lo
    lw   s10, 4(t1)          # edge index hi
    beq  s9, s10, phaseA_row_done
phaseA_inner:
    slli t1, s9, 2
    li   t2, EDGES
    add  t2, t2, t1
    lhu  t3, (t2)            # target
    li   t2, EDGES_F32
    add  t2, t2, t1
    lw   a1, (t2)            # f32 weight
    slli t3, t3, 2
    li   t2, F32_ISYN
    add  s11, t2, t3         # isyn address (survives the call)
    lw   a0, (s11)
    call fadd
    sw   a0, (s11)
    addi s9, s9, 1
    bne  s9, s10, phaseA_inner
phaseA_row_done:
    add  t0, s5, x0
    add  a5, s6, x0
    add  t6, s8, x0          # restore prev parity for the next producer
    addi a5, a5, -1
    bnez a5, phaseA_spike
";

/// Phase A for the soft-float variant: every deposit is an fadd call.
/// Parity preservation as in [`PHASE_A_SPARSE_SOFTFLOAT`].
const PHASE_A_SOFTFLOAT: &str = "
phaseA_spike:
    lhu  a2, (t0)
    addi t0, t0, 2
    add  s5, t0, x0          # save cursor across calls
    add  s6, a5, x0          # save remaining spike count
    add  s8, t6, x0          # save prev parity (calls clobber t0-t6)
    li   t1, N
    mul  a2, a2, t1
    add  a2, a2, s0
    slli a2, a2, 2
    li   t1, WEIGHTS_F32
    add  s9, a2, t1          # &Wf[j][start]
    li   t1, F32_ISYN
    slli t2, s0, 2
    add  s10, t1, t2         # &IsynF[start]
    sub  s11, s1, s0
phaseA_inner:
    lw   a0, (s10)
    lw   a1, (s9)
    call fadd
    sw   a0, (s10)
    addi s9, s9, 4
    addi s10, s10, 4
    addi s11, s11, -1
    bnez s11, phaseA_inner
    add  t0, s5, x0
    add  a5, s6, x0
    add  t6, s8, x0          # restore prev parity for the next producer
    addi a5, a5, -1
    bnez a5, phaseA_spike
";

/// Phase B prologue shared by the fixed-point variants: pointer setup.
fn phase_b_head(lay: &layout::Layout) -> String {
    format!(
        "
    li   s8, SPIKE_LISTS
    li   t1, SPIKE_PARITY_STRIDE
    mul  t1, t1, s3
    add  s8, s8, t1
    slli t1, s4, {seg_shift}
    add  s8, s8, t1          # my current spike-list cursor
    add  a3, s0, x0          # i = start
    li   s5, ISYN
    slli t1, s0, 2
    add  s5, s5, t1
    li   s6, VU
    slli t1, s0, 2
    add  s6, s6, t1
    li   s9, PARAMS
    slli t1, s0, 3
    add  s9, s9, t1
    slli t1, s2, 13          # xorshift hash of the tick: row selection
    xor  t1, t1, s2          # stays aperiodic even when the noise table
    srli t2, t1, 17          # is shorter than the run (a sequential wrap
    xor  t1, t1, t2          # would phase-lock the stochastic dynamics)
    slli t2, t1, 5
    xor  t1, t1, t2
    li   s10, NOISE_TICKS
    remu s10, t1, s10
    li   t1, N
    mul  s10, s10, t1
    add  s10, s10, s0
    slli s10, s10, 1
    li   t1, NOISE
    add  s10, s10, t1        # &noise[hash(t) mod P][start]
",
        seg_shift = lay.spike_seg_shift,
    )
}

/// Phase B prologue for the soft-float variant (f32 arrays, 4-byte noise).
const PHASE_B_HEAD_F32: &str = "
    li   s8, SPIKE_LISTS
    li   t1, SPIKE_PARITY_STRIDE
    mul  t1, t1, s3
    add  s8, s8, t1
    slli t1, s4, 11
    add  s8, s8, t1
    add  a4, s0, x0          # i = start (a4 survives calls)
    li   s5, F32_ISYN
    slli t1, s0, 2
    add  s5, s5, t1
    li   s6, F32_V
    slli t1, s0, 2
    add  s6, s6, t1
    li   s11, F32_U
    slli t1, s0, 2
    add  s11, s11, t1
    li   s9, F32_PARAMS
    slli t1, s0, 4
    add  s9, s9, t1
    slli t1, s2, 13          # same hashed row selection as the
    xor  t1, t1, s2          # fixed-point engine
    srli t2, t1, 17
    xor  t1, t1, t2
    slli t2, t1, 5
    xor  t1, t1, t2
    li   s10, NOISE_TICKS_F32
    remu s10, t1, s10
    li   t1, N
    mul  s10, s10, t1
    add  s10, s10, s0
    slli s10, s10, 2
    li   t1, NOISE_F32
    add  s10, s10, t1
";

/// Phase B, NPU variant — the paper's Listing-1 flow, two half-steps.
/// Scheduled so every load/nm result has one unrelated instruction before
/// its first use (the compiler's job on the real system; keeps the hazard
/// stalls in the paper's sub-percent range for the single core).
const PHASE_B_NPU: &str = "
phaseB_neuron:
    lw   a6, (s9)            # {b, a}
    lw   a7, 4(s9)           # {d, c}
    lh   t5, (s10)           # thalamic drive (Q7.8), hoisted
    nmldl x0, a6, a7         # load neuron parameters
    lw   a2, (s5)            # Isyn (Q15.16)
    li   t6, TAU
    slli t5, t5, 8           # thalamic -> Q15.16
    nmdec a2, a2, t6         # synaptic decay (DCU)
    lw   a6, (s6)            # VU word (fills the nm result slot)
    sw   a2, (s5)            # persist decayed current
    add  a7, a2, t5          # total drive
    add  a2, x0, s6
    nmpn a2, a6, a7          # half-step 1 (stores VU, returns spike)
    lw   a6, (s6)            # reload updated VU (fills the nm slot)
    add  t4, x0, a2
    add  a2, x0, s6
    nmpn a2, a6, a7          # half-step 2
    addi s5, s5, 4           # pointer bumps fill the nm slot
    or   t4, t4, a2
    addi s9, s9, 8
    addi s10, s10, 2
    beqz t4, phaseB_no_spike
    sh   a3, (s8)
    addi s8, s8, 2
    addi s7, s7, 1
    slli t5, s2, 16
    or   t5, t5, a3
    li   t0, MMIO_SPIKE_LOG
    sw   t5, (t0)            # export (t, neuron) to the host raster
phaseB_no_spike:
    addi a3, a3, 1
    addi s6, s6, 4
    bne  a3, s1, phaseB_neuron
";

/// Phase B, NPU variant, *naive* ordering: every load and nm result is
/// consumed by the very next instruction, exposing the load-use and
/// nm-writeback hazards the paper reports (and proposes CSR writeback
/// for). Functionally identical to [`PHASE_B_NPU`].
const PHASE_B_NPU_NAIVE: &str = "
phaseB_neuron:
    lw   a6, (s9)            # {b, a}
    lw   a7, 4(s9)           # {d, c}
    nmldl x0, a6, a7         # nm consumes the load immediately
    lw   a2, (s5)            # Isyn
    li   t6, TAU
    nmdec a2, a2, t6
    sw   a2, (s5)            # consumes the nm result immediately
    lh   t5, (s10)
    slli t5, t5, 8           # load-use
    add  a7, a2, t5
    lw   a6, (s6)
    add  a2, x0, s6
    nmpn a2, a6, a7
    add  t4, x0, a2          # consumes the spike flag immediately
    lw   a6, (s6)
    add  a2, x0, s6
    nmpn a2, a6, a7
    or   t4, t4, a2          # consumes the spike flag immediately
    beqz t4, phaseB_no_spike
    sh   a3, (s8)
    addi s8, s8, 2
    addi s7, s7, 1
    slli t5, s2, 16
    or   t5, t5, a3
    li   t0, MMIO_SPIKE_LOG
    sw   t5, (t0)
phaseB_no_spike:
    addi a3, a3, 1
    addi s5, s5, 4
    addi s6, s6, 4
    addi s9, s9, 8
    addi s10, s10, 2
    bne  a3, s1, phaseB_neuron
";

/// Phase B in base-ISA fixed point: the 19-operation update, twice per
/// tick (half-steps), plus the shift-approximated decay for the given τ.
fn phase_b_base_fixed(tau: u32) -> String {
    // Decay: dec = (sum of shifts) >> 1 (h = 0.5 ms); isyn -= dec.
    let shifts = SHIFT_TABLES[(tau as usize).clamp(1, 9) - 1];
    let mut decay = String::new();
    decay.push_str(&format!("    srai t0, a7, {}\n", shifts[0]));
    for &sh in &shifts[1..] {
        decay.push_str(&format!("    srai t3, a7, {sh}\n    add  t0, t0, t3\n"));
    }
    decay.push_str("    srai t0, t0, 1\n    sub  a7, a7, t0\n");

    let half_step = |k: u32| {
        format!(
            "
bf_step{k}:
    li   t3, 7680            # 30 mV in Q7.8
    blt  t1, t3, bf_nr{k}
    lh   t1, 4(s9)           # v <- c
    lh   t3, 6(s9)           # d (Q4.11)
    srai t3, t3, 3           # -> Q7.8
    add  t2, t2, t3          # u += d
    li   t4, 1               # spike flag
bf_nr{k}:
    mul  t5, t1, t1          # v^2 (Q*.16)
    srai t5, t5, 8           # Q7.8
    li   t3, 41              # 0.04 in Q0.10
    mul  t5, t5, t3
    srai t5, t5, 10          # 0.04 v^2, Q7.8
    slli t3, t1, 2
    add  t3, t3, t1          # 5v
    add  t5, t5, t3
    li   t3, 35840           # 140 in Q7.8
    add  t5, t5, t3
    sub  t5, t5, t2          # -u
    add  t5, t5, a5          # + drive (Q7.8)
    srai t5, t5, 1           # * h
    lh   t3, 2(s9)           # b (Q4.11)
    mul  t6, t3, t1          # b v (Q*.19)
    srai t6, t6, 11          # Q7.8
    sub  t6, t6, t2
    lh   t3, (s9)            # a (Q4.11)
    mul  t6, t6, t3
    srai t6, t6, 11
    srai t6, t6, 1           # * h
    add  t1, t1, t5          # v'
    add  t2, t2, t6          # u'
"
        )
    };

    format!(
        "
phaseB_neuron:
    lw   a7, (s5)            # Isyn (Q15.16)
{decay}
    sw   a7, (s5)
    srai a5, a7, 8           # -> Q7.8 drive
    lh   t5, (s10)           # thalamic (Q7.8)
    add  a5, a5, t5
    lw   t0, (s6)            # VU word
    srai t1, t0, 16          # v
    slli t2, t0, 16
    srai t2, t2, 16          # u
    li   t4, 0               # spike flag
{step0}
{step1}
    slli t1, t1, 16          # repack VU
    slli t2, t2, 16
    srli t2, t2, 16
    or   t0, t1, t2
    sw   t0, (s6)
    beqz t4, phaseB_no_spike
    sh   a3, (s8)
    addi s8, s8, 2
    addi s7, s7, 1
    slli t5, s2, 16
    or   t5, t5, a3
    li   t0, MMIO_SPIKE_LOG
    sw   t5, (t0)
phaseB_no_spike:
    addi a3, a3, 1
    addi s5, s5, 4
    addi s6, s6, 4
    addi s9, s9, 8
    addi s10, s10, 2
    bne  a3, s1, phaseB_neuron
",
        decay = decay,
        step0 = half_step(0),
        step1 = half_step(1),
    )
}

/// Phase B loop through the soft-float library. Live across calls:
/// a4 = i, a5 = drive, a6 = v, a7 = u, gp = spike flag.
const PHASE_B_SOFTFLOAT_LOOP: &str = "
phaseB_neuron:
    lw   a0, (s5)            # Isyn (f32)
    li   a1, DECAY_F32
    call fmul                # Isyn *= (1 - h/tau)
    sw   a0, (s5)
    lw   a1, (s10)           # thalamic (f32)
    call fadd
    add  a5, a0, x0          # drive
    lw   a6, (s6)            # v
    lw   a7, (s11)           # u
    add  gp, x0, x0          # spike flag
    call sf_half_step
    call sf_half_step
    sw   a6, (s6)
    sw   a7, (s11)
    beqz gp, phaseB_no_spike
    sh   a4, (s8)
    addi s8, s8, 2
    addi s7, s7, 1
    slli t5, s2, 16
    or   t5, t5, a4
    li   t0, MMIO_SPIKE_LOG
    sw   t5, (t0)
phaseB_no_spike:
    addi a4, a4, 1
    addi s5, s5, 4
    addi s6, s6, 4
    addi s11, s11, 4
    addi s9, s9, 16
    addi s10, s10, 4
    bne  a4, s1, phaseB_neuron
";

/// One 0.5 ms soft-float half-step over (a6 = v, a7 = u, a5 = drive);
/// sets gp on threshold crossing. Uses the stack for intermediates.
const SF_HALF_STEP: &str = "
sf_half_step:
    addi sp, sp, -12
    sw   ra, 8(sp)
    # spike test: v >= 30.0 (positive IEEE bits are numerically ordered)
    bltz a6, sf_nospike
    li   t0, 0x41F00000      # 30.0f
    blt  a6, t0, sf_nospike
    lw   a6, 8(s9)           # v <- c
    lw   a0, 12(s9)          # d
    add  a1, a7, x0
    call fadd
    add  a7, a0, x0          # u += d
    li   gp, 1
sf_nospike:
    add  a0, a6, x0
    add  a1, a6, x0
    call fmul                # v^2
    li   a1, 0x3D23D70A      # 0.04f
    call fmul
    sw   a0, (sp)            # acc = 0.04 v^2
    add  a0, a6, x0
    li   a1, 0x40A00000      # 5.0f
    call fmul
    lw   a1, (sp)
    call fadd
    li   a1, 0x430C0000      # 140.0f
    call fadd
    li   t0, 0x80000000
    xor  a1, a7, t0          # -u
    call fadd
    add  a1, a5, x0          # + drive
    call fadd
    li   a1, 0x3F000000      # 0.5f (h)
    call fmul
    sw   a0, (sp)            # h*dv
    lw   a0, 4(s9)           # b
    add  a1, a6, x0
    call fmul                # b v
    li   t0, 0x80000000
    xor  a1, a7, t0
    call fadd                # b v - u
    lw   a1, (s9)            # a
    call fmul
    li   a1, 0x3F000000
    call fmul                # h*du
    sw   a0, 4(sp)
    lw   a1, (sp)
    add  a0, a6, x0
    call fadd
    add  a6, a0, x0          # v += h dv
    lw   a1, 4(sp)
    add  a0, a7, x0
    call fadd
    add  a7, a0, x0          # u += h du
    lw   ra, 8(sp)
    addi sp, sp, 12
    ret
";

/// Tail: publish spike count, barrier (coupled only), parity flip, loop,
/// ROI stop, halt. The barrier routine stays in both variants — the
/// skeleton head always synchronises once before the tick loop.
fn skeleton_tail(coupled: bool, lay: &layout::Layout) -> String {
    let sync = if coupled { "    call barrier\n" } else { "" };
    format!(
        "
tick_publish:
    li   t0, SPIKE_COUNTS
    slli t1, s3, {count_parity_shift}
    add  t0, t0, t1
    slli t1, s4, 2
    add  t0, t0, t1
    sw   s7, (t0)            # publish my spike count
{sync}    xori s3, s3, 1
    addi s2, s2, 1
    li   t0, TICKS
    bne  s2, t0, tick_loop
    li   t0, MMIO_ROI
    sw   x0, (t0)            # stop counters
    li   t0, MMIO_HALT
    sw   x0, (t0)
    ebreak

barrier:
    li   t0, MMIO_BARRIER
    lw   t1, (t0)            # generation
    sw   x0, (t0)            # arrive
barrier_spin:
    lw   t2, (t0)
    beq  t2, t1, barrier_spin
    ret
",
        count_parity_shift = lay.count_parity_shift,
    )
}

/// Everything a run needs that is built *before* the first cycle: the
/// loaded main memory (program segments + data tables), the predecoded
/// code table, the entry point, and the patch maps naming which spans of
/// that memory came from the program (seed-invariant) versus the guest
/// image (seed-dependent). The cold path feeds this straight into
/// [`System::from_snapshot`]; the template cache snapshots it and replays
/// it per instantiation.
#[derive(Debug, Clone)]
pub struct PreparedRun {
    /// Loaded guest memory: program + data tables, never yet executed.
    pub mem: MainMemory,
    /// Predecoded micro-op stream covering the program segments.
    pub code: CodeTable,
    /// Program entry point (every core starts here).
    pub entry: u32,
    /// Spans holding the assembled program segments.
    pub prog_spans: PatchMap,
    /// Spans holding the guest image's data tables.
    pub image_spans: PatchMap,
}

/// Shape/bounds assertions shared by the cold and template paths.
pub(crate) fn assert_run_shape(cfg: &EngineConfig, image: &GuestImage) {
    assert_eq!(image.n, cfg.n, "image/config neuron-count mismatch");
    assert!(
        image.ticks >= cfg.ticks,
        "image was built for fewer ticks than the run requests"
    );
    let lay = cfg.layout();
    assert!(
        cfg.system.scratch_size >= lay.scratch_size,
        "scratchpad too small for this shape — call EngineConfig::fit_memory"
    );
    assert!(
        cfg.system.sdram_size >= lay.sdram_size,
        "SDRAM too small for this shape — call EngineConfig::fit_memory"
    );
    assert!(
        image.noise_q.len() >= lay.noise_rows(cfg.n, cfg.ticks) as usize * cfg.n,
        "image noise table shorter than the run's noise window"
    );
    if cfg.variant == Variant::SoftFloat {
        assert!(
            layout::NOISE_F32 + 4 * (cfg.n as u32) * image.ticks <= layout::ROWPTR,
            "f32 noise mirror overflows its window — use fewer ticks for soft-float runs"
        );
    }
}

/// Assemble the engine, lay the program and image out in a fresh memory
/// and predecode the code — the build phase of [`run_workload`], shared
/// verbatim with the template cache so a snapshot-instantiated run starts
/// from bit-identical state by construction.
pub fn prepare_run(cfg: &EngineConfig, image: &GuestImage) -> PreparedRun {
    assert_run_shape(cfg, image);
    let mut asm = build_asm(cfg);
    // The decay constant is config-dependent; bind it here.
    let decay = (1.0 - 0.5 / cfg.tau as f64) as f32;
    asm = format!(".equ DECAY_F32, {:#x}\n{asm}", decay.to_bits());
    let prog = Assembler::new()
        .relax(cfg.system.asm_relax)
        .assemble(&asm)
        .unwrap_or_else(|e| panic!("engine assembly failed: {e}"));
    let mut mem = MainMemory::new(cfg.system.sdram_size, cfg.system.scratch_size);
    let mut prog_spans = PatchMap::default();
    for seg in &prog.segments {
        assert!(mem.write_bytes(seg.base, &seg.data), "program load failed");
        prog_spans.record(seg.base, seg.data.len());
    }
    let mut code = CodeTable::new(cfg.system.sdram_size, cfg.system.scratch_size);
    for seg in &prog.segments {
        code.preload(seg.base, seg.data.len() as u32, &mem);
    }
    // Register the engine's hot inner loops as kernel spans: phase A's
    // accumulate loop and phase B's per-neuron update. Registration is a
    // structural audit of the assembled words, so it tracks whatever the
    // assembler actually emitted (relaxation included); a shape the audit
    // cannot prove batchable simply declines and the interpreter runs it.
    // Soft-float phase B calls helper routines, which the audit rejects —
    // skip it outright rather than audit a shape known not to qualify.
    if cfg.variant != Variant::SoftFloat {
        let phase_a = if cfg.sparse {
            KernelVariant::SparseA
        } else {
            KernelVariant::DenseA
        };
        let phase_b = if cfg.variant == Variant::Npu {
            KernelVariant::NpuB
        } else {
            KernelVariant::BaseFixedB
        };
        for (sym, variant) in [("phaseA_inner", phase_a), ("phaseB_neuron", phase_b)] {
            if let Some(entry) = prog.symbol(sym) {
                let _ = register_kernel_span(&mut code, &mem, entry, variant);
            }
        }
    }
    let mut image_spans = PatchMap::default();
    image.load_into_mem(&mut mem, cfg, &mut image_spans);
    PreparedRun {
        mem,
        code,
        entry: prog.entry,
        prog_spans,
        image_spans,
    }
}

/// `IZHI_PROFILE=1` report: the per-op-class retired-instruction
/// histogram (summed across cores) plus the share of retirement that ran
/// inside kernel-span batches. Printed to stderr so battery JSON on
/// stdout stays machine-parseable.
fn print_profile_report(sys: &System, cfg: &EngineConfig, instret: u64, classes: &[u64; 8]) {
    let mut kernel = 0u64;
    for i in 0..cfg.n_cores as usize {
        kernel += sys.core(i).kernel_instret;
    }
    let total: u64 = classes.iter().sum();
    eprintln!("IZHI_PROFILE: {total} instructions retired by class");
    for class in OpClass::ALL {
        let v = classes[class as usize];
        if v == 0 {
            continue;
        }
        eprintln!(
            "  {:<6} {:>14}  {:5.1}%",
            class.label(),
            v,
            100.0 * v as f64 / total.max(1) as f64
        );
    }
    eprintln!(
        "  kernel-span coverage: {kernel} of {instret} retired ({:.1}%)",
        100.0 * kernel as f64 / instret.max(1) as f64
    );
}

/// Run a fully prepared system and collect the workload result — the
/// execute/collect phase of [`run_workload`], shared with the template
/// path.
pub fn run_prepared_system(
    sys: &mut System,
    cfg: &EngineConfig,
    max_cycles: u64,
) -> Result<WorkloadResult, SimError> {
    // Histogram = delta of the process-global table around this run, so
    // in-process batteries report per-run figures.
    let prof_base =
        izhi_sim::counters::profile_enabled().then(izhi_sim::counters::profile_snapshot);
    let exit = sys.run(max_cycles)?;
    if let Some(base) = prof_base {
        let mut classes = izhi_sim::counters::profile_snapshot();
        for (v, b) in classes.iter_mut().zip(base) {
            *v -= b;
        }
        print_profile_report(sys, cfg, exit.instret, &classes);
    }
    let raster = SpikeRaster::from_packed(cfg.n as u32, cfg.ticks, &sys.shared().dev.spike_log);
    let counters: Vec<PerfCounters> = (0..cfg.n_cores as usize)
        .map(|i| sys.core(i).roi_counters())
        .collect();
    // One neuron *update* in the paper's Eq.-9 sense is a full 1 ms step;
    // the engine realises it as two 0.5 ms `nmpn` half-steps.
    let metrics = counters
        .iter()
        .map(|c| Metrics::with_updates(c, cfg.system.clock_hz, c.nmpn / 2))
        .collect();
    let weight_hash = cfg.plastic.then(|| {
        // The total edge count is the last entry of the last core's row
        // pointers — mode-independent, so every scheduler reads back the
        // same multiset of words.
        let lay = cfg.layout();
        let n = cfg.n;
        let last = ((cfg.n_cores as usize - 1) * (n + 1) + n) as u32;
        let mem = &sys.shared().mem;
        let total = mem
            .read_u32(lay.rowptr + 4 * last)
            .expect("rowptr table out of range");
        let bytes = mem
            .read_bytes(lay.edges, 4 * total as usize)
            .expect("edge table out of range");
        let mut h: u64 = 0;
        for w in bytes.chunks_exact(4) {
            h = h.wrapping_add(edge_word_fnv(u32::from_le_bytes(w.try_into().unwrap())));
        }
        h
    });
    Ok(WorkloadResult {
        raster,
        metrics,
        counters,
        cycles: exit.cycles,
        instret: exit.instret,
        ticks: cfg.ticks,
        weight_hash,
    })
}

/// Assemble, load and run a workload end to end (the cold path: every
/// run pays the full build; see [`crate::template`] for the amortised
/// one).
pub fn run_workload(
    cfg: &EngineConfig,
    image: &GuestImage,
    max_cycles: u64,
) -> Result<WorkloadResult, SimError> {
    let prep = prepare_run(cfg, image);
    let mut system_cfg = cfg.system.clone();
    system_cfg.n_cores = cfg.n_cores;
    let mut sys = System::from_snapshot(system_cfg, prep.mem, prep.code, prep.entry);
    run_prepared_system(&mut sys, cfg, max_cycles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use izhi_core::params::IzhParams;
    use izhi_snn::network::Network;

    fn tiny_net(n: usize) -> Network {
        // A ring of RS neurons with modest excitatory coupling.
        let params = vec![IzhParams::regular_spiking(); n];
        let edges = (0..n)
            .map(|i| (i as u32, ((i + 1) % n) as u32, 3.0))
            .collect::<Vec<_>>();
        Network::from_edges(params, edges)
    }

    fn run_tiny(variant: Variant, n_cores: u32, ticks: u32) -> WorkloadResult {
        let net = tiny_net(20);
        let bias = vec![6.0; 20];
        let noise = vec![2.0; 20];
        let image = GuestImage::from_network(&net, &bias, &noise, ticks, 11);
        let cfg = EngineConfig::new(20, ticks, n_cores, variant);
        run_workload(&cfg, &image, 4_000_000_000).expect("run failed")
    }

    #[test]
    fn kernel_spans_register_for_fixed_point_variants() {
        use izhi_sim::SpanState;
        // Every fixed-point loop shape the engine emits must survive the
        // structural audit — a silent registration failure is a perf
        // regression the differential suites cannot see.
        for (variant, sparse, scheduled, plastic) in [
            (Variant::Npu, false, true, false),
            (Variant::Npu, false, false, false),
            (Variant::Npu, true, true, false),
            (Variant::Npu, true, true, true),
            (Variant::BaseFixed, false, true, false),
        ] {
            let net = tiny_net(20);
            let bias = vec![6.0; 20];
            let noise = vec![2.0; 20];
            let image = GuestImage::from_network(&net, &bias, &noise, 5, 11);
            let mut cfg = EngineConfig::new(20, 5, 1, variant);
            cfg.sparse = sparse;
            cfg.scheduled = scheduled;
            cfg.plastic = plastic;
            let prep = prepare_run(&cfg, &image);
            let spans = prep.code.kernel_spans();
            let what = format!("{variant:?} sparse={sparse} sched={scheduled} stdp={plastic}");
            assert_eq!(spans.len(), 2, "{what}: both inner loops register");
            for s in spans {
                assert_eq!(s.state, SpanState::Ready, "{what}: span at {:#x}", s.entry);
            }
        }
        // Soft-float phase B calls helper routines; registration is
        // skipped outright.
        let net = tiny_net(20);
        let image = GuestImage::from_network(&net, &[6.0; 20], &[2.0; 20], 5, 11);
        let cfg = EngineConfig::new(20, 5, 1, Variant::SoftFloat);
        let prep = prepare_run(&cfg, &image);
        assert!(prep.code.kernel_spans().is_empty());
    }

    #[test]
    fn asm_assembles_for_all_variants() {
        for variant in [Variant::Npu, Variant::BaseFixed, Variant::SoftFloat] {
            for cores in [1, 2, 4] {
                let cfg = EngineConfig::new(100, 10, cores, variant);
                let asm = format!(".equ DECAY_F32, 0x3f400000\n{}", build_asm(&cfg));
                Assembler::new()
                    .assemble(&asm)
                    .unwrap_or_else(|e| panic!("{variant:?}/{cores}: {e}"));
            }
        }
    }

    #[test]
    fn npu_network_is_active() {
        let res = run_tiny(Variant::Npu, 1, 200);
        assert!(!res.raster.spikes.is_empty(), "no spikes at all");
        assert!(res.counters[0].nmpn > 0, "nmpn never retired");
        assert_eq!(
            res.counters[0].nmpn,
            2 * 20 * 200,
            "two nmpn per neuron-tick"
        );
        assert_eq!(res.counters[0].nmdec, 20 * 200);
    }

    #[test]
    fn base_fixed_matches_npu_statistically() {
        let a = run_tiny(Variant::Npu, 1, 300);
        let b = run_tiny(Variant::BaseFixed, 1, 300);
        assert!(b.counters[0].nmpn == 0, "baseline must not use nmpn");
        let ra = a.raster.spikes.len() as f64;
        let rb = b.raster.spikes.len() as f64;
        assert!(ra > 0.0 && rb > 0.0, "{ra} vs {rb}");
        assert!(
            (ra - rb).abs() / ra < 0.3,
            "spike counts diverge: {ra} vs {rb}"
        );
    }

    #[test]
    fn softfloat_matches_npu_statistically() {
        let a = run_tiny(Variant::Npu, 1, 150);
        let b = run_tiny(Variant::SoftFloat, 1, 150);
        assert!(b.counters[0].nmpn == 0);
        let ra = a.raster.spikes.len() as f64;
        let rb = b.raster.spikes.len() as f64;
        assert!(ra > 0.0 && rb > 0.0, "{ra} vs {rb}");
        assert!((ra - rb).abs() / ra.max(rb) < 0.35, "{ra} vs {rb}");
    }

    #[test]
    fn softfloat_is_dramatically_slower() {
        let a = run_tiny(Variant::Npu, 1, 100);
        let b = run_tiny(Variant::SoftFloat, 1, 100);
        let ratio = b.counters[0].cycles as f64 / a.counters[0].cycles as f64;
        assert!(ratio > 10.0, "soft-float only {ratio:.1}x slower");
    }

    #[test]
    fn softfloat_dual_core_matches_single_core_spikes() {
        // Regression: the soft-float library clobbers t0-t6, and the
        // coupled phase-A producer loop used to re-read spike counts with
        // a clobbered parity register (t6) after the first spiking
        // producer — wrong-parity counts made multi-core soft-float runs
        // interleaving-dependent. The partitioned run must reproduce the
        // single-core raster exactly, like every other variant.
        let r1 = run_tiny(Variant::SoftFloat, 1, 120);
        let r2 = run_tiny(Variant::SoftFloat, 2, 120);
        let mut s1 = r1.raster.spikes.clone();
        let mut s2 = r2.raster.spikes.clone();
        s1.sort_unstable();
        s2.sort_unstable();
        assert_eq!(s1, s2, "multi-core changed the soft-float computation");
    }

    #[test]
    fn dual_core_matches_single_core_spikes() {
        // Same image, same noise stream: spike rasters must be identical
        // regardless of core count (deterministic partitioned execution).
        let r1 = run_tiny(Variant::Npu, 1, 200);
        let r2 = run_tiny(Variant::Npu, 2, 200);
        let mut s1 = r1.raster.spikes.clone();
        let mut s2 = r2.raster.spikes.clone();
        s1.sort_unstable();
        s2.sort_unstable();
        assert_eq!(s1, s2, "multi-core changes the computation");
    }

    #[test]
    fn dual_core_is_faster() {
        let r1 = run_tiny(Variant::Npu, 1, 200);
        let r2 = run_tiny(Variant::Npu, 2, 200);
        let speedup = r1.cycles as f64 / r2.cycles as f64;
        assert!(speedup > 1.2, "dual-core speedup only {speedup:.2}");
        assert!(speedup < 2.1, "speedup {speedup:.2} is super-linear?");
    }

    #[test]
    fn roi_metrics_populated() {
        let res = run_tiny(Variant::Npu, 2, 100);
        for (i, m) in res.metrics.iter().enumerate() {
            assert!(m.cycles > 0, "core {i} measured nothing");
            assert!(m.ipc > 0.1 && m.ipc <= 1.0, "core {i} ipc = {}", m.ipc);
            assert!(m.icache_hit_pct > 90.0);
        }
    }

    #[test]
    fn sparse_and_dense_phase_a_are_equivalent() {
        // Same network, same noise: the CSR walk must produce the exact
        // same spike raster as the dense row walk, on 1 and 2 cores.
        for cores in [1u32, 2] {
            let net = tiny_net(20);
            let bias = vec![6.0; 20];
            let noise = vec![2.0; 20];
            let image = GuestImage::from_network(&net, &bias, &noise, 150, 11);
            let mut dense_cfg = EngineConfig::new(20, 150, cores, Variant::Npu);
            dense_cfg.sparse = false;
            let mut sparse_cfg = dense_cfg.clone();
            sparse_cfg.sparse = true;
            let a = run_workload(&dense_cfg, &image, 2_000_000_000).unwrap();
            let b = run_workload(&sparse_cfg, &image, 2_000_000_000).unwrap();
            let mut sa = a.raster.spikes.clone();
            let mut sb = b.raster.spikes.clone();
            sa.sort_unstable();
            sb.sort_unstable();
            assert_eq!(sa, sb, "{cores} cores");
        }
    }

    #[test]
    fn sparse_is_faster_on_sparse_networks() {
        // 4 % density: the CSR walk must beat the dense row walk clearly.
        let net = tiny_net(100); // ring: 1 edge per neuron
        let bias = vec![8.0; 100];
        let noise = vec![2.0; 100];
        let image = GuestImage::from_network(&net, &bias, &noise, 100, 3);
        let mut dense_cfg = EngineConfig::new(100, 100, 1, Variant::Npu);
        dense_cfg.sparse = false;
        let mut sparse_cfg = dense_cfg.clone();
        sparse_cfg.sparse = true;
        let a = run_workload(&dense_cfg, &image, 4_000_000_000).unwrap();
        let b = run_workload(&sparse_cfg, &image, 4_000_000_000).unwrap();
        assert!(!a.raster.spikes.is_empty());
        assert!(
            (b.cycles as f64) * 1.5 < a.cycles as f64,
            "sparse {} vs dense {} cycles",
            b.cycles,
            a.cycles
        );
    }

    #[test]
    fn relaxed_parallel_matches_relaxed_on_coupled_engine() {
        // The coupled engine barriers twice per tick, so under
        // host-parallel scheduling nearly every quantum defers at a
        // barrier arrival and finishes in the sequential commit phase —
        // the worst case for the parallel scheduler, which must still be
        // bit-identical to the sequential relaxed schedule (spike-log
        // order, relaxed clock, instret), on even and odd core splits.
        use izhi_sim::{SchedMode, TimingModel};
        let net = tiny_net(20);
        let bias = vec![6.0; 20];
        let noise = vec![2.0; 20];
        let image = GuestImage::from_network(&net, &bias, &noise, 120, 11);
        for (cores, quantum) in [(2u32, 64u64), (3, 4096)] {
            let mut cfg = EngineConfig::new(20, 120, cores, Variant::Npu);
            cfg.system.sched = SchedMode::Relaxed {
                quantum,
                timing: TimingModel::Unit,
            };
            let relaxed = run_workload(&cfg, &image, 4_000_000_000).unwrap();
            assert!(!relaxed.raster.spikes.is_empty());
            for host_threads in [1u32, 2, 4] {
                cfg.system.sched = SchedMode::RelaxedParallel {
                    quantum,
                    host_threads,
                    timing: TimingModel::Unit,
                };
                let par = run_workload(&cfg, &image, 4_000_000_000).unwrap();
                let tag = format!("cores {cores} quantum {quantum} ht {host_threads}");
                assert_eq!(relaxed.raster.spikes, par.raster.spikes, "{tag}: spikes");
                assert_eq!(relaxed.cycles, par.cycles, "{tag}: cycles");
                assert_eq!(relaxed.instret, par.instret, "{tag}: instret");
            }
        }
    }

    #[test]
    fn scaled_layout_matches_standard_layout_raster() {
        // The same network run on 16 cores (scaled map: restacked scratch,
        // 16 core slots, CSR-only SDRAM) must reproduce the 4-core
        // standard-map raster bit for bit — the layout is addressing, not
        // physics.
        let net = tiny_net(320);
        let bias = vec![6.0; 320];
        let noise = vec![2.0; 320];
        let ticks = 120;
        let mut std_cfg = EngineConfig::new(320, ticks, 4, Variant::Npu);
        std_cfg.sparse = true;
        assert!(!std_cfg.layout().is_scaled());
        let std_img = GuestImage::from_network(&net, &bias, &noise, ticks, 11);
        let a = run_workload(&std_cfg, &std_img, 4_000_000_000).unwrap();

        let mut sc_cfg = EngineConfig::new(320, ticks, 16, Variant::Npu);
        sc_cfg.sparse = true;
        sc_cfg.fit_memory(net.n_synapses());
        let lay = sc_cfg.layout();
        assert!(lay.is_scaled());
        let sc_img = GuestImage::from_network_csr(&net, &bias, &noise, ticks, 11, &lay);
        let b = run_workload(&sc_cfg, &sc_img, 4_000_000_000).unwrap();

        assert!(!a.raster.spikes.is_empty());
        let mut sa = a.raster.spikes.clone();
        let mut sb = b.raster.spikes.clone();
        sa.sort_unstable();
        sb.sort_unstable();
        assert_eq!(sa, sb, "scaled map changed the computation");
    }

    #[test]
    fn csr_native_image_matches_dense_image() {
        // Same standard-layout shape, CSR-native vs dense image: the guest
        // tables are built from different sources but must be identical.
        let net = tiny_net(64);
        let bias = vec![6.0; 64];
        let noise = vec![2.0; 64];
        let mut cfg = EngineConfig::new(64, 100, 2, Variant::Npu);
        cfg.sparse = true;
        let lay = cfg.layout();
        let dense = GuestImage::from_network(&net, &bias, &noise, 100, 7);
        let native = GuestImage::from_network_csr(&net, &bias, &noise, 100, 7, &lay);
        assert_eq!(
            dense.initial_weight_hash(&cfg),
            native.initial_weight_hash(&cfg)
        );
        let a = run_workload(&cfg, &dense, 2_000_000_000).unwrap();
        let b = run_workload(&cfg, &native, 2_000_000_000).unwrap();
        assert_eq!(a.raster.spikes, b.raster.spikes);
    }

    #[test]
    fn stdp_evolves_weights_identically_across_core_counts() {
        let net = tiny_net(60);
        let bias = vec![6.0; 60];
        let noise = vec![2.0; 60];
        let image = GuestImage::from_network(&net, &bias, &noise, 200, 11);
        let mut results = Vec::new();
        for cores in [1u32, 2, 3] {
            let mut cfg = EngineConfig::new(60, 200, cores, Variant::Npu);
            cfg.sparse = true;
            cfg.plastic = true;
            let initial = image.initial_weight_hash(&cfg);
            let res = run_workload(&cfg, &image, 4_000_000_000).unwrap();
            assert!(!res.raster.spikes.is_empty());
            let hash = res.weight_hash.expect("plastic run must report weights");
            assert_ne!(hash, initial, "{cores} cores: no weight ever updated");
            results.push((res.raster_hash(), hash));
        }
        assert_eq!(results[0], results[1], "2 cores diverged");
        assert_eq!(results[0], results[2], "3 cores diverged");
    }

    #[test]
    fn non_plastic_runs_report_no_weight_hash() {
        let res = run_tiny(Variant::Npu, 1, 50);
        assert_eq!(res.weight_hash, None);
    }

    #[test]
    fn stimulus_injection_drives_a_quiet_network() {
        use izhi_sim::StimPlan;
        // No synapses, no bias, no noise: only the injected neurons may
        // fire, and without a plan nothing does.
        let params = vec![izhi_core::params::IzhParams::regular_spiking(); 40];
        let net = Network::from_edges(params, vec![]);
        let bias = vec![0.0; 40];
        let noise = vec![0.0; 40];
        let image = GuestImage::from_network(&net, &bias, &noise, 60, 5);
        let mut cfg = EngineConfig::new(40, 60, 2, Variant::Npu);
        cfg.stim = true;
        let quiet = run_workload(&cfg, &image, 2_000_000_000).unwrap();
        assert!(
            quiet.raster.spikes.is_empty(),
            "quiet net fired unstimulated"
        );
        let mut plan = StimPlan::none();
        for t in 10..16 {
            plan = plan.with(t, 0, 3).with(t, 1, 25); // chunk = 20
        }
        cfg.system.stim = plan;
        let res = run_workload(&cfg, &image, 2_000_000_000).unwrap();
        assert!(!res.raster.spikes.is_empty(), "stimulus had no effect");
        for &(t, n) in &res.raster.spikes {
            assert!(t >= 10, "spike before any injection at tick {t}");
            assert!(n == 3 || n == 25, "uninjected neuron {n} fired");
        }
    }

    #[test]
    fn stimulated_run_is_identical_across_schedulers() {
        use izhi_sim::{SchedMode, StimPlan, TimingModel};
        let net = tiny_net(40);
        let bias = vec![5.0; 40];
        let noise = vec![2.0; 40];
        let image = GuestImage::from_network(&net, &bias, &noise, 100, 9);
        let mut cfg = EngineConfig::new(40, 100, 2, Variant::Npu);
        cfg.stim = true;
        let mut plan = StimPlan::none();
        let mut x = 9u32;
        for t in 0..100u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let neuron = x % 40;
            plan = plan.with(t, neuron / 20, neuron);
        }
        cfg.system.stim = plan;
        let exact = run_workload(&cfg, &image, 4_000_000_000).unwrap();
        assert!(!exact.raster.spikes.is_empty());
        let mut hashes = vec![exact.raster_hash()];
        cfg.system.sched = SchedMode::Relaxed {
            quantum: 50_000,
            timing: TimingModel::Unit,
        };
        hashes.push(
            run_workload(&cfg, &image, 4_000_000_000)
                .unwrap()
                .raster_hash(),
        );
        for host_threads in [1u32, 2, 4] {
            cfg.system.sched = SchedMode::RelaxedParallel {
                quantum: 50_000,
                host_threads,
                timing: TimingModel::Unit,
            };
            hashes.push(
                run_workload(&cfg, &image, 4_000_000_000)
                    .unwrap()
                    .raster_hash(),
            );
        }
        assert!(
            hashes.iter().all(|&h| h == hashes[0]),
            "stimulated run diverged across schedulers: {hashes:?}"
        );
    }

    #[test]
    fn three_core_odd_split_works() {
        // 20 neurons over 3 cores: chunks 7/7/6.
        let res = run_tiny(Variant::Npu, 3, 100);
        assert!(!res.raster.spikes.is_empty());
        let r1 = run_tiny(Variant::Npu, 1, 100);
        let mut a = res.raster.spikes.clone();
        let mut b = r1.raster.spikes.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

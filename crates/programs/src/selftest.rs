//! Guest-side ISA self-test battery, in the spirit of `riscv-tests`:
//! a generated assembly program exercises base-ISA and neuromorphic
//! corner cases *on the simulated core* and reports pass/fail per case
//! through the console MMIO, so the whole fetch/decode/execute/memory
//! pipeline is validated end to end (not just the Rust-level semantics).

use izhi_isa::asm::Assembler;
use izhi_sim::{System, SystemConfig};

/// One self-test case: a code body that leaves its result in `t0`, plus
/// the expected value.
#[derive(Debug, Clone)]
pub struct SelfTest {
    /// Short identifier (letters/digits/underscore).
    pub name: &'static str,
    /// Assembly body; must leave the result in `t0` and clobber only
    /// `t0`-`t6` / `a0`-`a7`.
    pub body: &'static str,
    /// Expected final value of `t0`.
    pub expect: u32,
}

/// The battery. Each case is independent; ordering is irrelevant.
pub fn battery() -> Vec<SelfTest> {
    vec![
        SelfTest {
            name: "addi_chain",
            body: "li t0, 0\n addi t0, t0, 100\n addi t0, t0, -42\n",
            expect: 58,
        },
        SelfTest {
            name: "lui_addi_neg",
            body: "li t0, -1\n srli t0, t0, 4\n",
            expect: 0x0FFF_FFFF,
        },
        SelfTest {
            name: "slt_signed_edge",
            body: "li t1, 0x80000000\n li t2, 1\n slt t0, t1, t2\n",
            expect: 1,
        },
        SelfTest {
            name: "sltu_unsigned_edge",
            body: "li t1, 0x80000000\n li t2, 1\n sltu t0, t1, t2\n",
            expect: 0,
        },
        SelfTest {
            name: "sra_sign_extends",
            body: "li t1, 0x80000000\n srai t0, t1, 31\n",
            expect: 0xFFFF_FFFF,
        },
        SelfTest {
            name: "sll_by_reg_masks_5_bits",
            body: "li t1, 1\n li t2, 33\n sll t0, t1, t2\n",
            expect: 2,
        },
        SelfTest {
            name: "mul_wraps",
            body: "li t1, 0x10000\n mul t0, t1, t1\n",
            expect: 0,
        },
        SelfTest {
            name: "mulh_signed",
            body: "li t1, -2\n li t2, 0x40000000\n mulh t0, t1, t2\n",
            expect: 0xFFFF_FFFF,
        },
        SelfTest {
            name: "mulhu_unsigned",
            body: "li t1, 0xFFFFFFFF\n li t2, 0xFFFFFFFF\n mulhu t0, t1, t2\n",
            expect: 0xFFFF_FFFE,
        },
        SelfTest {
            name: "div_round_to_zero",
            body: "li t1, -7\n li t2, 2\n div t0, t1, t2\n",
            expect: (-3i32) as u32,
        },
        SelfTest {
            name: "div_by_zero_all_ones",
            body: "li t1, 42\n div t0, t1, x0\n",
            expect: u32::MAX,
        },
        SelfTest {
            name: "div_overflow",
            body: "li t1, 0x80000000\n li t2, -1\n div t0, t1, t2\n",
            expect: 0x8000_0000,
        },
        SelfTest {
            name: "rem_sign_of_dividend",
            body: "li t1, -7\n li t2, 2\n rem t0, t1, t2\n",
            expect: (-1i32) as u32,
        },
        SelfTest {
            name: "remu_by_zero_is_dividend",
            body: "li t1, 42\n remu t0, t1, x0\n",
            expect: 42,
        },
        SelfTest {
            name: "byte_halfword_sign",
            body: "li t1, 0x10000000\n li t2, 0x8081\n sh t2, (t1)\n lb t0, (t1)\n \
                   andi t0, t0, 0xFF\n lh t3, (t1)\n srai t3, t3, 16\n add t0, t0, t3\n",
            expect: 0x81 - 1, // lb sign-extends 0x81; lh sign-extends 0x8081
        },
        SelfTest {
            name: "lbu_lhu_zero_extend",
            body: "li t1, 0x10000000\n li t2, 0xFFFF\n sh t2, (t1)\n lbu t0, (t1)\n \
                   lhu t3, (t1)\n add t0, t0, t3\n",
            expect: 0xFF + 0xFFFF,
        },
        SelfTest {
            name: "store_word_overwrites",
            body: "li t1, 0x10000000\n li t2, -1\n sw t2, (t1)\n li t2, 0x12\n \
                   sb t2, 1(t1)\n lw t0, (t1)\n",
            expect: 0xFFFF_12FF,
        },
        SelfTest {
            name: "jalr_clears_bit0",
            body: "la t1, jt_target\n addi t1, t1, 1\n jalr ra, t1, 0\n \
                   j jt_done\n jt_target: li t0, 77\n jt_done: nop\n",
            expect: 77,
        },
        SelfTest {
            name: "branch_unsigned_vs_signed",
            body: "li t0, 0\n li t1, -1\n li t2, 1\n bltu t2, t1, bu_ok\n j bu_done\n \
                   bu_ok: bge t2, t1, bs_ok\n j bu_done\n bs_ok: li t0, 5\n bu_done: nop\n",
            expect: 5,
        },
        SelfTest {
            name: "auipc_pc_relative",
            body: "auipc t1, 0\n auipc t2, 0\n sub t0, t2, t1\n",
            expect: 4,
        },
        SelfTest {
            name: "csr_cycle_monotone",
            body: "csrr t1, mcycle\n nop\n nop\n csrr t2, mcycle\n sltu t0, t1, t2\n",
            expect: 1,
        },
        SelfTest {
            name: "nmldl_returns_ok",
            body: "li a6, 0x01990029\n li a7, 0x4000BF00\n nmldl t0, a6, a7\n",
            expect: 1,
        },
        SelfTest {
            name: "nmldh_returns_ok",
            body: "li a6, 2\n nmldh t0, a6, x0\n",
            expect: 1,
        },
        SelfTest {
            name: "nmdec_tau1_halves",
            // tau=1, h=0.5ms: dec = (x>>0)>>1 -> y = x - x/2.
            body: "li a6, 0\n nmldh x0, a6, x0\n li a0, 0x00100000\n li a1, 1\n \
                   nmdec t0, a0, a1\n",
            expect: 0x0008_0000,
        },
        SelfTest {
            name: "nmdec_tau8_shifts",
            // tau=8: dec = (x>>3)>>1 = x/16 -> y = x - x/16.
            body: "li a6, 0\n nmldh x0, a6, x0\n li a0, 0x00100000\n li a1, 8\n \
                   nmdec t0, a0, a1\n",
            expect: 0x0010_0000 - 0x0001_0000,
        },
        SelfTest {
            name: "nmpn_subthreshold_no_spike",
            body: "li a6, 0x01990029\n li a7, 0x4000BF00\n nmldl x0, a6, a7\n \
                   li a6, 0\n nmldh x0, a6, x0\n li t1, 0x10000000\n \
                   li t2, 0xBF00F300\n sw t2, (t1)\n lw a6, (t1)\n \
                   add a2, x0, t1\n li a7, 0\n nmpn a2, a6, a7\n add t0, a2, x0\n",
            expect: 0,
        },
        SelfTest {
            name: "nmpn_above_threshold_spikes",
            // v = +31 (0x1F00 Q7.8) is above V_TH = 30.
            body: "li a6, 0x01990029\n li a7, 0x4000BF00\n nmldl x0, a6, a7\n \
                   li a6, 0\n nmldh x0, a6, x0\n li t1, 0x10000000\n \
                   li t2, 0x1F000000\n sw t2, (t1)\n lw a6, (t1)\n \
                   add a2, x0, t1\n li a7, 0\n nmpn a2, a6, a7\n add t0, a2, x0\n",
            expect: 1,
        },
        SelfTest {
            name: "nmpn_stores_vu_to_memory",
            // After a spike the stored VU word must differ from the input.
            body: "li a6, 0x01990029\n li a7, 0x4000BF00\n nmldl x0, a6, a7\n \
                   li a6, 0\n nmldh x0, a6, x0\n li t1, 0x10000000\n \
                   li t2, 0x1F000000\n sw t2, (t1)\n lw a6, (t1)\n \
                   add a2, x0, t1\n li a7, 0\n nmpn a2, a6, a7\n \
                   lw t3, (t1)\n xor t0, t3, t2\n sltu t0, x0, t0\n",
            expect: 1,
        },
        SelfTest {
            name: "fence_is_noop",
            body: "li t0, 9\n fence\n",
            expect: 9,
        },
        SelfTest {
            name: "x0_ignores_writes",
            body: "li t1, 5\n add x0, t1, t1\n add t0, x0, x0\n",
            expect: 0,
        },
    ]
}

/// Assemble the whole battery into one guest program. Each case prints
/// `ok <name>` or `FAIL <name>` to the console.
pub fn battery_asm() -> String {
    let mut body = String::from("_start:\n");
    let mut data = String::from(".data 0x200000\n");
    for (i, t) in battery().iter().enumerate() {
        data.push_str(&format!("msg_ok_{i}: .byte 'o','k',' '\nmsg_name_{i}: ",));
        for ch in t.name.chars() {
            data.push_str(&format!(".byte '{ch}'\n"));
        }
        data.push_str(".byte 10\n.align 2\n");
        body.push_str(&format!(
            "
test_{i}:
{bodytext}
    li   t6, {expect:#x}
    beq  t0, t6, pass_{i}
    # FAIL: print 'F' then the name
    li   t5, 0xF0000000
    li   t4, 'F'
    sw   t4, (t5)
    la   a0, msg_name_{i}
    call print_str
    li   t4, 1
    la   t5, fail_count
    lw   t3, (t5)
    add  t3, t3, t4
    sw   t3, (t5)
    j    next_{i}
pass_{i}:
    la   a0, msg_ok_{i}
    call print_str
next_{i}:
",
            bodytext = t.body,
            expect = t.expect,
        ));
    }
    body.push_str(
        "
    la   t5, fail_count
    lw   a0, (t5)
    li   a7, 1
    ecall               # print the failure count
    ebreak

# print a NUL/newline-terminated string at a0 (stops after '\\n')
print_str:
    li   t5, 0xF0000000
ps_loop:
    lbu  t4, (a0)
    sw   t4, (t5)
    addi a0, a0, 1
    li   t3, 10
    bne  t4, t3, ps_loop
    ret
",
    );
    format!("{body}\n{data}\nfail_count: .word 0\n")
}

/// Run the battery on a fresh system; returns `(failures, console)`.
pub fn run_battery() -> (u32, String) {
    let prog = Assembler::new()
        .assemble(&battery_asm())
        .unwrap_or_else(|e| panic!("self-test battery failed to assemble: {e}"));
    let mut sys = System::new(SystemConfig::default());
    sys.load_program(&prog);
    sys.run(50_000_000).expect("battery run trapped");
    let console = sys.console();
    // The final printed integer is the failure count.
    let failures = console
        .lines()
        .last()
        .and_then(|l| l.trim().parse::<u32>().ok())
        .unwrap_or(u32::MAX);
    (failures, console)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_passes_on_the_simulator() {
        let (failures, console) = run_battery();
        assert_eq!(failures, 0, "self-test failures:\n{console}");
        // Every case printed its ok line.
        let oks = console.matches("ok ").count();
        assert_eq!(oks, battery().len(), "console:\n{console}");
    }

    #[test]
    fn battery_names_unique() {
        let mut names: Vec<_> = battery().iter().map(|t| t.name).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}

//! IEEE-754 single-precision add and multiply in RV32IM assembly, plus a
//! bit-exact Rust reference model.
//!
//! The paper compares its NPU/DCU fixed-point solver against "the soft-float
//! implementation supported by original DTEK-V" (§VI-C). We reproduce that
//! baseline with hand-written routines of the size and shape a compact
//! softfloat library has on RV32IM. Simplifications (documented, identical
//! in the model):
//!
//! * subnormals flush to signed zero (inputs and outputs),
//! * rounding is truncation (round-toward-zero on the magnitude for
//!   multiply; floor on the two's-complement-aligned sum for add),
//! * NaNs are not produced; `fmul` propagates infinity, `fadd` treats
//!   exp=0xFF as a huge ordinary value.
//!
//! None of these affect the SNN workloads (values stay well inside the
//! normal range) or the cycle counts (the simplified paths are the common
//! paths), which is what the baseline exists to measure.

/// Calling convention: `a0`, `a1` arguments; result in `a0`; clobbers
/// `t0`-`t6` and `a2`-`a3`; `ra` used for the return.
pub const FADD_FMUL_ASM: &str = r#"
# ---- f32 multiply: a0 = a0 * a1 (flush-to-zero, truncating) ----
fmul:
    xor  t0, a0, a1
    srli t0, t0, 31
    slli t0, t0, 31          # result sign
    srli t1, a0, 23
    andi t1, t1, 0xFF        # ea
    srli t2, a1, 23
    andi t2, t2, 0xFF        # eb
    beqz t1, fmul_zero
    beqz t2, fmul_zero
    li   t3, 0xFF
    beq  t1, t3, fmul_inf
    beq  t2, t3, fmul_inf
    slli t4, a0, 9
    srli t4, t4, 9
    li   t5, 0x800000
    or   t4, t4, t5          # ma (24 bits)
    slli t6, a1, 9
    srli t6, t6, 9
    or   t6, t6, t5          # mb
    mul  a2, t4, t6          # product low 32
    mulhu a3, t4, t6         # product high (bits 47..32)
    add  t1, t1, t2
    addi t1, t1, -127        # tentative exponent
    li   t2, 0x8000
    bltu a3, t2, fmul_lo
    slli a3, a3, 8           # product in [2^47, 2^48): take [47:24]
    srli a2, a2, 24
    or   a2, a3, a2
    addi t1, t1, 1
    j    fmul_pack
fmul_lo:
    slli a3, a3, 9           # product in [2^46, 2^47): take [46:23]
    srli a2, a2, 23
    or   a2, a3, a2
fmul_pack:
    blez t1, fmul_zero       # underflow flushes
    li   t3, 0xFF
    bge  t1, t3, fmul_inf
    li   t5, 0x7FFFFF
    and  a2, a2, t5
    slli t1, t1, 23
    or   a0, t0, t1
    or   a0, a0, a2
    ret
fmul_zero:
    add  a0, t0, x0
    ret
fmul_inf:
    li   a0, 0x7F800000
    or   a0, a0, t0
    ret

# ---- f32 add: a0 = a0 + a1 (flush-to-zero, truncating) ----
fadd:
    srli t0, a0, 23
    andi t0, t0, 0xFF        # ea
    beqz t0, fadd_a_zero
    slli t1, a0, 9
    srli t1, t1, 9
    li   t4, 0x800000
    or   t1, t1, t4          # ma
    slli t1, t1, 3           # 3 guard bits
    bgez a0, fadd_unpack_b
    sub  t1, x0, t1          # signed mantissa
fadd_unpack_b:
    srli t2, a1, 23
    andi t2, t2, 0xFF        # eb
    beqz t2, fadd_b_zero
    slli t3, a1, 9
    srli t3, t3, 9
    li   t4, 0x800000
    or   t3, t3, t4
    slli t3, t3, 3
    bgez a1, fadd_align
    sub  t3, x0, t3
fadd_align:
    bge  t0, t2, fadd_noswap
    add  t4, t0, x0          # swap so ea >= eb
    add  t0, t2, x0
    add  t2, t4, x0
    add  t4, t1, x0
    add  t1, t3, x0
    add  t3, t4, x0
fadd_noswap:
    sub  t4, t0, t2
    li   t5, 28
    bge  t4, t5, fadd_norm   # smaller operand negligible
    sra  t3, t3, t4
    add  t1, t1, t3
    beqz t1, fadd_pzero
fadd_norm:
    add  t6, x0, x0          # result sign
    bgez t1, fadd_norm_mag
    li   t6, 1
    sub  t1, x0, t1
fadd_norm_mag:
    li   t4, 0x8000000       # 2^27 (hidden bit << 3, doubled)
fadd_norm_down:
    bltu t1, t4, fadd_norm_up
    srli t1, t1, 1
    addi t0, t0, 1
    j    fadd_norm_down
fadd_norm_up:
    li   t4, 0x4000000       # 2^26 (hidden bit << 3)
fadd_norm_up_loop:
    bgeu t1, t4, fadd_pack
    slli t1, t1, 1
    addi t0, t0, -1
    j    fadd_norm_up_loop
fadd_pack:
    srli t1, t1, 3           # drop guard bits (truncate)
    blez t0, fadd_zero_signed
    li   t4, 0xFF
    bge  t0, t4, fadd_inf
    li   t4, 0x7FFFFF
    and  t1, t1, t4
    slli t0, t0, 23
    slli t6, t6, 31
    or   a0, t0, t1
    or   a0, a0, t6
    ret
fadd_a_zero:
    srli t2, a1, 23
    andi t2, t2, 0xFF
    add  a0, a1, x0
    bnez t2, fadd_ret
    add  a0, x0, x0          # both (near) zero -> +0
fadd_ret:
    ret
fadd_b_zero:
    ret                      # a unchanged (b flushed)
fadd_pzero:
    add  a0, x0, x0
    ret
fadd_zero_signed:
    slli a0, t6, 31
    ret
fadd_inf:
    li   a0, 0x7F800000
    slli t6, t6, 31
    or   a0, a0, t6
    ret
"#;

/// Bit-exact Rust model of the guest `fmul` routine.
pub fn model_fmul(a: u32, b: u32) -> u32 {
    let sign = (a ^ b) & 0x8000_0000;
    let ea = (a >> 23) & 0xFF;
    let eb = (b >> 23) & 0xFF;
    if ea == 0 || eb == 0 {
        return sign;
    }
    if ea == 0xFF || eb == 0xFF {
        return 0x7F80_0000 | sign;
    }
    let ma = (a & 0x7F_FFFF) | 0x80_0000;
    let mb = (b & 0x7F_FFFF) | 0x80_0000;
    let prod = ma as u64 * mb as u64; // in [2^46, 2^48)
    let mut exp = ea as i32 + eb as i32 - 127;
    let mant = if prod >= 1 << 47 {
        exp += 1;
        (prod >> 24) as u32
    } else {
        (prod >> 23) as u32
    };
    if exp <= 0 {
        return sign;
    }
    if exp >= 0xFF {
        return 0x7F80_0000 | sign;
    }
    sign | ((exp as u32) << 23) | (mant & 0x7F_FFFF)
}

/// Bit-exact Rust model of the guest `fadd` routine.
pub fn model_fadd(a: u32, b: u32) -> u32 {
    let ea = (a >> 23) & 0xFF;
    let eb = (b >> 23) & 0xFF;
    if ea == 0 {
        return if eb != 0 { b } else { 0 };
    }
    if eb == 0 {
        return a;
    }
    let mut ma = (((a & 0x7F_FFFF) | 0x80_0000) << 3) as i32;
    if a & 0x8000_0000 != 0 {
        ma = -ma;
    }
    let mut mb = (((b & 0x7F_FFFF) | 0x80_0000) << 3) as i32;
    if b & 0x8000_0000 != 0 {
        mb = -mb;
    }
    let (mut e, m_big, e_small, mut m_small) = if ea >= eb {
        (ea as i32, ma, eb as i32, mb)
    } else {
        (eb as i32, mb, ea as i32, ma)
    };
    let diff = e - e_small;
    let mut m = m_big;
    if diff < 28 {
        m_small >>= diff;
        m += m_small;
        if m == 0 {
            return 0;
        }
    } else {
        m = m_big;
    }
    let neg = m < 0;
    let mut mag = if neg {
        (m as i64).unsigned_abs() as u32
    } else {
        m as u32
    };
    while mag >= 1 << 27 {
        mag >>= 1;
        e += 1;
    }
    while mag < 1 << 26 {
        mag <<= 1;
        e -= 1;
    }
    mag >>= 3;
    if e <= 0 {
        return if neg { 0x8000_0000 } else { 0 };
    }
    if e >= 0xFF {
        return 0x7F80_0000 | if neg { 0x8000_0000 } else { 0 };
    }
    (if neg { 0x8000_0000 } else { 0 }) | ((e as u32) << 23) | (mag & 0x7F_FFFF)
}

/// Shorthand: model multiply on `f32` values.
pub fn model_fmul_f32(a: f32, b: f32) -> f32 {
    f32::from_bits(model_fmul(a.to_bits(), b.to_bits()))
}

/// Shorthand: model add on `f32` values.
pub fn model_fadd_f32(a: f32, b: f32) -> f32 {
    f32::from_bits(model_fadd(a.to_bits(), b.to_bits()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use izhi_isa::Assembler;
    use izhi_isa::Reg;
    use izhi_sim::{System, SystemConfig};

    /// Run the guest routine on a pair of bit patterns.
    fn run_guest(routine: &str, a: u32, b: u32) -> u32 {
        let src = format!(
            "
            _start: li a0, {a:#x}
                    li a1, {b:#x}
                    call {routine}
                    ebreak
            {FADD_FMUL_ASM}
            "
        );
        let prog = Assembler::new().assemble(&src).unwrap();
        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&prog);
        sys.run(100_000).unwrap();
        sys.core(0).reg(Reg::A0)
    }

    /// Run many pairs in one guest session (table-driven, much faster).
    fn run_guest_batch(routine: &str, pairs: &[(u32, u32)]) -> Vec<u32> {
        // Guest reads pairs from a table, writes results back in place.
        let mut table = String::from(".data 0x100000\npairs:\n");
        for (a, b) in pairs {
            table.push_str(&format!(".word {a:#x}, {b:#x}\n"));
        }
        let src = format!(
            "
            {table}
            .text
            _start: la   s0, pairs
                    li   s1, {n}
            bloop:  lw   a0, (s0)
                    lw   a1, 4(s0)
                    call {routine}
                    sw   a0, (s0)
                    addi s0, s0, 8
                    addi s1, s1, -1
                    bnez s1, bloop
                    ebreak
            {FADD_FMUL_ASM}
            ",
            n = pairs.len()
        );
        let prog = Assembler::new().assemble(&src).unwrap();
        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&prog);
        sys.run(200_000_000).unwrap();
        (0..pairs.len())
            .map(|i| sys.shared().mem.read_u32(0x100000 + 8 * i as u32).unwrap())
            .collect()
    }

    #[allow(clippy::approx_constant)] // arbitrary probe values, not math constants
    fn interesting_values() -> Vec<f32> {
        vec![
            0.0,
            -0.0,
            1.0,
            -1.0,
            2.0,
            0.5,
            -0.5,
            3.1415926,
            -2.718,
            140.0,
            0.04,
            5.0,
            -65.0,
            30.0,
            1e-3,
            -1e-3,
            1e10,
            -1e10,
            1e-10,
            0.75,
            123456.78,
            -0.001953125,
            16777216.0,
            1.0000001,
            -0.9999999,
        ]
    }

    #[test]
    fn fmul_guest_matches_model_on_grid() {
        let vals = interesting_values();
        let mut pairs = Vec::new();
        for &a in &vals {
            for &b in &vals {
                pairs.push((a.to_bits(), b.to_bits()));
            }
        }
        let got = run_guest_batch("fmul", &pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let want = model_fmul(a, b);
            assert_eq!(
                got[i],
                want,
                "fmul({}, {}) = {:#010x}, want {:#010x}",
                f32::from_bits(a),
                f32::from_bits(b),
                got[i],
                want
            );
        }
    }

    #[test]
    fn fadd_guest_matches_model_on_grid() {
        let vals = interesting_values();
        let mut pairs = Vec::new();
        for &a in &vals {
            for &b in &vals {
                pairs.push((a.to_bits(), b.to_bits()));
            }
        }
        let got = run_guest_batch("fadd", &pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let want = model_fadd(a, b);
            assert_eq!(
                got[i],
                want,
                "fadd({}, {}) = {:#010x}, want {:#010x}",
                f32::from_bits(a),
                f32::from_bits(b),
                got[i],
                want
            );
        }
    }

    #[test]
    fn fmul_guest_matches_model_randomised() {
        let mut state = 0x1357_9BDFu32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        let pairs: Vec<(u32, u32)> = (0..300)
            .map(|_| {
                // Constrain to normal range exponents to avoid flush paths
                // dominating.
                let a = (next() & 0x80FF_FFFF) | (((next() % 200) + 28) << 23);
                let b = (next() & 0x80FF_FFFF) | (((next() % 200) + 28) << 23);
                (a, b)
            })
            .collect();
        let got = run_guest_batch("fmul", &pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(got[i], model_fmul(a, b), "fmul {a:#x} {b:#x}");
        }
    }

    #[test]
    fn fadd_guest_matches_model_randomised() {
        let mut state = 0x2468_ACE0u32;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 17;
            state ^= state << 5;
            state
        };
        let pairs: Vec<(u32, u32)> = (0..300)
            .map(|_| {
                let a = (next() & 0x80FF_FFFF) | (((next() % 200) + 28) << 23);
                let b = (next() & 0x80FF_FFFF) | (((next() % 200) + 28) << 23);
                (a, b)
            })
            .collect();
        let got = run_guest_batch("fadd", &pairs);
        for (i, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(got[i], model_fadd(a, b), "fadd {a:#x} {b:#x}");
        }
    }

    #[test]
    fn model_accuracy_against_hardware_floats() {
        // Truncating arithmetic must stay within 1 ulp of true f32 results
        // for normal operands.
        for &a in &interesting_values() {
            for &b in &interesting_values() {
                let m = model_fmul_f32(a, b);
                let t = a * b;
                if t.is_finite() && t != 0.0 && t.abs() > 1e-30 && t.abs() < 1e30 {
                    let ulp = (t.to_bits() as i64 - m.to_bits() as i64).abs();
                    assert!(ulp <= 1, "fmul({a}, {b}) = {m}, true {t}");
                }
                let m = model_fadd_f32(a, b);
                let t = a + b;
                if t.is_finite() && t != 0.0 && t.abs() > 1e-30 && t.abs() < 1e30 {
                    // Alignment truncation can cost a couple of ulps.
                    let ulp = (t.to_bits() as i64 - m.to_bits() as i64).abs();
                    assert!(ulp <= 2, "fadd({a}, {b}) = {m}, true {t}");
                }
            }
        }
    }

    #[test]
    fn single_call_smoke() {
        let r = run_guest("fmul", 3.0f32.to_bits(), 4.0f32.to_bits());
        assert_eq!(f32::from_bits(r), 12.0);
        let r = run_guest("fadd", 1.5f32.to_bits(), 2.25f32.to_bits());
        assert_eq!(f32::from_bits(r), 3.75);
        let r = run_guest("fadd", 10.0f32.to_bits(), (-10.0f32).to_bits());
        assert_eq!(r, 0);
    }

    #[test]
    fn softfloat_cost_is_tens_of_cycles() {
        // The whole point of the baseline: one float op costs ~30-80 cycles.
        let src = format!(
            "
            _start: li   a0, 0x40490FDB   # pi
                    li   a1, 0x402DF854   # e
                    call fmul             # warm the I-cache
                    li   a0, 0x40490FDB
                    li   a1, 0x402DF854
                    csrr s0, mcycle
                    call fmul
                    csrr s1, mcycle
                    sub  s2, s1, s0
                    ebreak
            {FADD_FMUL_ASM}
            "
        );
        let prog = Assembler::new().assemble(&src).unwrap();
        let mut sys = System::new(SystemConfig::default());
        sys.load_program(&prog);
        sys.run(100_000).unwrap();
        let cycles = sys.core(0).reg(Reg::S2);
        assert!(
            (20..=200).contains(&cycles),
            "fmul took {cycles} cycles — outside the soft-float regime"
        );
    }
}

//! The 80-20 cortical-network workload (Table V, Figs. 2-3), plus its
//! scale-out descendants: the CSR-native sharded population, the STDP
//! (plastic) variant and the stimulus-streamed variant.

use izhi_sim::StimPlan;
use izhi_snn::gen8020::Net8020;
use izhi_snn::network::Network;
use izhi_snn::noise::XorShift32;

use crate::engine::{EngineConfig, GuestImage, Variant};

/// A prepared 80-20 guest workload.
#[derive(Debug, Clone)]
pub struct Net8020Workload {
    /// The generated network (host view).
    pub net: Net8020,
    /// The guest memory image.
    pub image: GuestImage,
    /// Engine configuration.
    pub cfg: EngineConfig,
    /// Commutative hash of the initial weight table — `Some` for plastic
    /// (STDP) builds; [`Workload::verify`](crate::scenario::Workload)
    /// demands the run's final hash exists and differs from it.
    pub initial_weight_hash: Option<u64>,
    /// Streaming build: all drive comes from injected stimulus, so the
    /// wide cortical-rate verification band does not apply.
    pub stream: bool,
}

impl Net8020Workload {
    /// The paper's configuration: 1000 neurons, `ticks` 1 ms steps.
    pub fn standard(ticks: u32, n_cores: u32, seed: u32) -> Self {
        Self::sized(800, 200, ticks, n_cores, seed, Variant::Npu)
    }

    /// Arbitrary population sizes / variant (for tests and ablations).
    pub fn sized(
        n_exc: usize,
        n_inh: usize,
        ticks: u32,
        n_cores: u32,
        seed: u32,
        variant: Variant,
    ) -> Self {
        Self::build(
            Net8020::with_size(n_exc, n_inh, seed),
            ticks,
            n_cores,
            seed,
            variant,
            false,
        )
    }

    /// A *pruned* 80-20 population on the sparse CSR phase-A walk: each
    /// presynaptic row keeps only its `density` fraction of largest-
    /// magnitude weights, boosted so the row's total delivered charge is
    /// preserved (the population dynamics stay in the dense network's
    /// regime). Pruning is what makes populations beyond the dense
    /// `WEIGHTS` window practical: phase A walks per-core CSR rows, so
    /// the per-tick scatter cost scales with `density * n` instead of
    /// `n`.
    pub fn sized_sparse(
        n_exc: usize,
        n_inh: usize,
        ticks: u32,
        n_cores: u32,
        seed: u32,
        density: f64,
    ) -> Self {
        let mut net = Net8020::with_size(n_exc, n_inh, seed);
        let n = net.len();
        let keep = ((density * n as f64).ceil() as usize).clamp(1, n);
        let mut edges = Vec::with_capacity(keep * n);
        for pre in 0..n {
            let mut row: Vec<(u32, f64)> = net.network.out_edges(pre).collect();
            row.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
            let total: f64 = row.iter().map(|&(_, w)| w).sum();
            row.truncate(keep);
            let kept: f64 = row.iter().map(|&(_, w)| w).sum();
            let boost = if kept.abs() > 1e-12 {
                total / kept
            } else {
                1.0
            };
            edges.extend(
                row.into_iter()
                    .map(|(post, w)| (pre as u32, post, w * boost)),
            );
        }
        net.network = Network::from_edges(std::mem::take(&mut net.network.params), edges);
        Self::build(net, ticks, n_cores, seed, Variant::Npu, true)
    }

    fn build(
        mut net: Net8020,
        ticks: u32,
        n_cores: u32,
        seed: u32,
        variant: Variant,
        sparse: bool,
    ) -> Self {
        // Charge normalisation: Izhikevich's script delivers each weight
        // for exactly one tick, while the IzhiRISC-V system integrates a
        // *persistent* current with DCU decay (retention r = 1 - h/τ =
        // 0.75 at τ = 2). Scaling weights by (1 - r) makes the total
        // delivered charge per spike match the original network, so the
        // population dynamics stay in the paper's regime.
        for w in &mut net.network.weights {
            *w *= 0.25;
        }
        let n = net.len();
        let bias = vec![0.0; n];
        let noise_std: Vec<f64> = (0..n)
            .map(|i| {
                if net.is_excitatory(i) {
                    net.exc_noise
                } else {
                    net.inh_noise
                }
            })
            .collect();
        let image = GuestImage::from_network(&net.network, &bias, &noise_std, ticks, seed ^ 0xABCD);
        let mut cfg = EngineConfig::new(n, ticks, n_cores, variant);
        cfg.sparse = sparse;
        Net8020Workload {
            net,
            image,
            cfg,
            initial_weight_hash: None,
            stream: false,
        }
    }

    /// The scale-out build: a directly-generated sparse 80-20 population
    /// sharded across `n_cores` guest cores (one contiguous neuron chunk
    /// per core, spike exchange through the per-tick barrier). CSR-native
    /// end to end — no dense matrix exists host- or guest-side, which is
    /// what lets this cross the standard memory map's 4096-neuron /
    /// 8-core bounds onto the scaled map.
    pub fn sharded(
        n_exc: usize,
        n_inh: usize,
        density: f64,
        ticks: u32,
        n_cores: u32,
        seed: u32,
    ) -> Self {
        Self::build_csr(
            Net8020::sparse_random(n_exc, n_inh, density, seed),
            ticks,
            n_cores,
            seed,
            false,
        )
    }

    /// The plastic (STDP) build: the sharded population with the engine's
    /// delivery-time nearest-neighbour plasticity switched on. Records the
    /// initial weight hash so verification can prove the weights evolved.
    pub fn stdp(
        n_exc: usize,
        n_inh: usize,
        density: f64,
        ticks: u32,
        n_cores: u32,
        seed: u32,
    ) -> Self {
        let mut wl = Self::build_csr(
            Net8020::sparse_random(n_exc, n_inh, density, seed),
            ticks,
            n_cores,
            seed,
            true,
        );
        wl.initial_weight_hash = Some(wl.image.initial_weight_hash(&wl.cfg));
        wl
    }

    /// The streaming build: no thalamic noise, no bias — every bit of
    /// drive arrives through the MMIO stimulus port, `stim_rate` injected
    /// events per tick drawn deterministically from the seed. One engine
    /// template serves every seed: the drain code is shape (`cfg.stim`),
    /// the schedule is seed data (`cfg.system.stim`).
    pub fn stream(
        n_exc: usize,
        n_inh: usize,
        density: f64,
        ticks: u32,
        n_cores: u32,
        seed: u32,
        stim_rate: u32,
    ) -> Self {
        let net = Net8020::sparse_random(n_exc, n_inh, density, seed);
        let n = net.len();
        let mut wl = Self::build_csr(net, ticks, n_cores, seed, false);
        wl.stream = true;
        // Silence the thalamic channel: the stimulus is the only input.
        let bias = vec![0.0; n];
        let zero_noise = vec![0.0; n];
        let lay = wl.cfg.layout();
        wl.image = GuestImage::from_network_csr(
            &wl.net.network,
            &bias,
            &zero_noise,
            ticks,
            seed ^ 0xABCD,
            &lay,
        );
        wl.cfg.stim = true;
        let chunk = wl.cfg.chunk() as u32;
        let mut rng = XorShift32::new(seed ^ 0x57D1);
        let mut plan = StimPlan::none();
        for t in 0..ticks {
            for _ in 0..stim_rate {
                let neuron = rng.next_u32() % n as u32;
                plan = plan.with(t, neuron / chunk, neuron);
            }
        }
        wl.cfg.system.stim = plan;
        wl
    }

    fn build_csr(mut net: Net8020, ticks: u32, n_cores: u32, seed: u32, plastic: bool) -> Self {
        // Same charge normalisation as the dense build (see `build`).
        for w in &mut net.network.weights {
            *w *= 0.25;
        }
        let n = net.len();
        let bias = vec![0.0; n];
        let noise_std: Vec<f64> = (0..n)
            .map(|i| {
                if net.is_excitatory(i) {
                    net.exc_noise
                } else {
                    net.inh_noise
                }
            })
            .collect();
        let mut cfg = EngineConfig::new(n, ticks, n_cores, Variant::Npu);
        cfg.sparse = true;
        cfg.plastic = plastic;
        cfg.fit_memory(net.network.n_synapses());
        let lay = cfg.layout();
        let image = GuestImage::from_network_csr(
            &net.network,
            &bias,
            &noise_std,
            ticks,
            seed ^ 0xABCD,
            &lay,
        );
        Net8020Workload {
            net,
            image,
            cfg,
            initial_weight_hash: None,
            stream: false,
        }
    }

    // Running lives on the `crate::scenario::Workload` trait impl (the
    // registry's single definition of "run this under the configured
    // scheduling mode"); no inherent duplicate here.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Workload as _;
    use izhi_snn::analysis::IsiHistogram;
    use izhi_snn::simulate::{F64Simulator, FixedSimulator};

    #[test]
    fn small_8020_runs_and_spikes() {
        let wl = Net8020Workload::sized(80, 20, 300, 1, 5, Variant::Npu);
        let res = wl.run().unwrap();
        assert!(
            res.raster.spikes.len() > 50,
            "only {} spikes",
            res.raster.spikes.len()
        );
        // Mean rate in a plausible cortical range.
        let rate = res.raster.mean_rate_hz();
        assert!((0.5..=200.0).contains(&rate), "rate = {rate} Hz");
    }

    #[test]
    fn guest_and_host_simulators_agree_statistically() {
        // Same network; independent noise streams -> compare rates & ISIs.
        let wl = Net8020Workload::sized(80, 20, 600, 1, 5, Variant::Npu);
        let res = wl.run().unwrap();

        let mut host = FixedSimulator::new(&wl.net.network, 2, 999);
        for i in 0..wl.net.len() {
            host.noise_std[i] = if wl.net.is_excitatory(i) {
                wl.net.exc_noise
            } else {
                wl.net.inh_noise
            };
        }
        let host_raster = host.run(600);

        let mut f64_host = F64Simulator::new(&wl.net.network, 2, 777);
        for i in 0..wl.net.len() {
            f64_host.noise_std[i] = if wl.net.is_excitatory(i) {
                wl.net.exc_noise
            } else {
                wl.net.inh_noise
            };
        }
        let f64_raster = f64_host.run(600);

        let rg = res.raster.mean_rate_hz();
        let rh = host_raster.mean_rate_hz();
        let rf = f64_raster.mean_rate_hz();
        assert!(rg > 0.0 && rh > 0.0 && rf > 0.0);
        assert!((rg - rh).abs() / rh < 0.35, "guest {rg} vs fixed-host {rh}");
        assert!((rg - rf).abs() / rf < 0.45, "guest {rg} vs f64-host {rf}");

        // Fig. 3 criterion: ISI histogram shapes agree.
        let hg = IsiHistogram::from_raster(&res.raster, 10, 300);
        let hh = IsiHistogram::from_raster(&host_raster, 10, 300);
        let hf = IsiHistogram::from_raster(&f64_raster, 10, 300);
        assert!(
            hg.similarity(&hh) > 0.6,
            "guest/fixed = {}",
            hg.similarity(&hh)
        );
        assert!(
            hg.similarity(&hf) > 0.5,
            "guest/f64 = {}",
            hg.similarity(&hf)
        );
    }

    #[test]
    fn relaxed_scheduling_preserves_the_raster() {
        // Barrier-coupled phases: the relaxed scheduler's blocking barrier
        // keeps the tick phases ordered, so the spike raster must be the
        // exact run's raster (order within a tick may differ).
        let exact = Net8020Workload::sized(80, 20, 200, 2, 5, Variant::Npu)
            .run()
            .unwrap();
        let mut wl = Net8020Workload::sized(80, 20, 200, 2, 5, Variant::Npu);
        wl.cfg.system.sched = izhi_sim::SchedMode::relaxed();
        let relaxed = wl.run().unwrap();
        let mut a = exact.raster.spikes.clone();
        let mut b = relaxed.raster.spikes.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn dual_core_speedup_in_expected_band() {
        let one = Net8020Workload::sized(80, 20, 150, 1, 5, Variant::Npu)
            .run()
            .unwrap();
        let two = Net8020Workload::sized(80, 20, 150, 2, 5, Variant::Npu)
            .run()
            .unwrap();
        let speedup = one.exec_time_s() / two.exec_time_s();
        // Paper: 1.643x on the full network.
        assert!((1.2..=2.0).contains(&speedup), "speedup {speedup:.3}");
    }
}

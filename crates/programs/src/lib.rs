//! # izhi-programs — guest workloads for the IzhiRISC-V simulator
//!
//! This crate authors, loads and drives the RV32 programs the paper runs on
//! its FPGA cores:
//!
//! * [`engine`] — a parameterised SNN engine (assembly generator) shared by
//!   both workloads, in three arithmetic variants:
//!   the neuromorphic-ISA version (`nmldl`/`nmldh`/`nmpn`/`nmdec`), a
//!   base-ISA fixed-point version (the 19-operation update of §II-C), and
//!   a soft-float version (the paper's §VI-C comparison baseline);
//! * [`softfloat`] — IEEE-754 single-precision add/multiply written in
//!   RV32IM assembly (flush-to-zero, truncating), with a bit-exact Rust
//!   reference model used for verification;
//! * [`net8020`] — the 1000-neuron 80-20 cortical workload (Table V,
//!   Figs. 2–3);
//! * [`sudoku_prog`] — the 729-neuron WTA Sudoku workload (Table VI);
//! * [`sweep`] — a barrier-light multi-population 80-20 sweep (one
//!   independent population per core; the showcase for the simulator's
//!   relaxed scheduling mode);
//! * [`layout`] — guest memory-map constants shared between the assembly
//!   generator and the host-side image builder;
//! * [`scenario`] — the scenario registry: every workload above (plus the
//!   beyond-paper scenarios) behind one [`scenario::Workload`] trait with
//!   a name, parameter schema and self-verification hook, so the CLI,
//!   benches, perf baseline and test batteries drive them uniformly;
//! * [`template`] — build-once run templates: each (scenario, shape) is
//!   assembled, loaded and predecoded once into an immutable cached
//!   snapshot, and runs are stamped out copy-on-write with only the
//!   seed-dependent tables patched in.

pub mod engine;
pub mod layout;
pub mod net8020;
pub mod scenario;
pub mod selftest;
pub mod softfloat;
pub mod sudoku_prog;
pub mod sweep;
pub mod template;

pub use engine::{EngineConfig, Variant, WorkloadResult};
pub use net8020::Net8020Workload;
pub use scenario::{ParamSpec, Scenario, ScenarioParams, Workload};
pub use sudoku_prog::SudokuWorkload;
pub use sweep::{Net8020SweepWorkload, SweepPoint};
pub use template::{RunInstance, RunTemplate};
